package sim_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// announceProtocol is a minimal spec-conforming protocol used to pin down
// engine semantics exactly: the process labeled 1 declares itself leader at
// init and sends ⟨FINISH, 1⟩; everyone else forwards it, learns the leader
// and halts; the leader halts when it returns. One lap, n messages.
type announceProtocol struct{}

func (announceProtocol) Name() string { return "announce" }
func (announceProtocol) NewMachine(id ring.Label) core.Machine {
	return &announceMachine{id: id}
}

type announceMachine struct {
	id       ring.Label
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool
}

func (m *announceMachine) Init(out *core.Outbox) string {
	if m.id == 1 {
		m.isLeader, m.done, m.leader, m.ledSet = true, true, 1, true
		out.Send(core.FinishLabel(m.id))
	}
	return "T1"
}

func (m *announceMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	if m.halted {
		return "", fmt.Errorf("announce: message after halt")
	}
	if msg.Kind != core.KindFinishLabel {
		return "", fmt.Errorf("announce: unexpected %s", msg)
	}
	if m.isLeader {
		m.halted = true
		return "T3", nil
	}
	m.leader, m.ledSet, m.done = msg.Label, true, true
	out.Send(msg)
	m.halted = true
	return "T2", nil
}

func (m *announceMachine) Halted() bool { return m.halted }
func (m *announceMachine) Status() core.Status {
	return core.Status{IsLeader: m.isLeader, Done: m.done, Leader: m.leader, LeaderSet: m.ledSet}
}
func (m *announceMachine) StateName() string { return "T" }
func (m *announceMachine) SpaceBits() int    { return 8 }
func (m *announceMachine) Fingerprint() string {
	return fmt.Sprintf("announce %v %v %v", m.id, m.isLeader, m.halted)
}

func TestSyncExactStepCount(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		r := ring.Distinct(n) // labels 1..n; leader is label 1 at index 0
		res, err := sim.RunSync(r, announceProtocol{}, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Step 1: every process runs Init. The announcement then moves one
		// hop per step, n hops total: steps 2..n+1.
		if res.Steps != n+1 {
			t.Errorf("n=%d: steps = %d, want %d", n, res.Steps, n+1)
		}
		if res.Messages != n {
			t.Errorf("n=%d: messages = %d, want %d", n, res.Messages, n)
		}
		if res.LeaderIndex != 0 {
			t.Errorf("n=%d: leader = %d, want 0", n, res.LeaderIndex)
		}
		if res.Actions != n+n { // n inits + n deliveries
			t.Errorf("n=%d: actions = %d, want %d", n, res.Actions, 2*n)
		}
		if !res.Halted {
			t.Error("run must report clean halt")
		}
	}
}

func TestAsyncExactTimeUnits(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		r := ring.Distinct(n)
		res, err := sim.RunAsync(r, announceProtocol{}, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The announcement is sent at t=0 and takes n unit-delay hops.
		if res.TimeUnits != float64(n) {
			t.Errorf("n=%d: time = %v, want %d", n, res.TimeUnits, n)
		}
		if res.Steps != n { // n deliveries
			t.Errorf("n=%d: deliveries = %d, want %d", n, res.Steps, n)
		}
	}
}

// fifoProtocol checks the FIFO guarantee: process 1 emits an increasing
// token burst at init; its right neighbor asserts it receives them in
// order, then the leader announcement completes the spec.
type fifoProtocol struct{ burst int }

func (fifoProtocol) Name() string { return "fifo" }
func (p fifoProtocol) NewMachine(id ring.Label) core.Machine {
	return &fifoMachine{id: id, burst: p.burst}
}

type fifoMachine struct {
	id       ring.Label
	burst    int
	got      int
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool
}

func (m *fifoMachine) Init(out *core.Outbox) string {
	if m.id == 1 {
		for i := 1; i <= m.burst; i++ {
			out.Send(core.Token(ring.Label(i)))
		}
		m.isLeader, m.done, m.leader, m.ledSet = true, true, 1, true
		out.Send(core.FinishLabel(1))
	}
	return "F1"
}

func (m *fifoMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	switch msg.Kind {
	case core.KindToken:
		if m.isLeader {
			return "F4", nil // consume returning tokens
		}
		if int(msg.Label) != m.got+1 {
			return "", fmt.Errorf("fifo violation: got token %s after %d", msg.Label, m.got)
		}
		m.got = int(msg.Label)
		out.Send(msg)
		return "F2", nil
	case core.KindFinishLabel:
		if m.isLeader {
			m.halted = true
			return "F5", nil
		}
		if m.got != m.burst {
			return "", fmt.Errorf("fifo violation: FINISH overtook tokens (%d/%d seen)", m.got, m.burst)
		}
		m.leader, m.ledSet, m.done = msg.Label, true, true
		out.Send(msg)
		m.halted = true
		return "F3", nil
	default:
		return "", fmt.Errorf("fifo: unexpected %s", msg)
	}
}

func (m *fifoMachine) Halted() bool { return m.halted }
func (m *fifoMachine) Status() core.Status {
	return core.Status{IsLeader: m.isLeader, Done: m.done, Leader: m.leader, LeaderSet: m.ledSet}
}
func (m *fifoMachine) StateName() string   { return "F" }
func (m *fifoMachine) SpaceBits() int      { return 8 }
func (m *fifoMachine) Fingerprint() string { return fmt.Sprintf("fifo %v %d", m.id, m.got) }

func TestFIFOPreservedUnderAllSchedules(t *testing.T) {
	r := ring.Distinct(6)
	p := fifoProtocol{burst: 7}
	if _, err := sim.RunSync(r, p, sim.Options{}); err != nil {
		t.Errorf("sync: %v", err)
	}
	if _, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{}); err != nil {
		t.Errorf("unit: %v", err)
	}
	for seed := int64(0); seed < 20; seed++ {
		if _, err := sim.RunAsync(r, p, sim.NewUniformDelay(seed, 0), sim.Options{}); err != nil {
			t.Errorf("random seed %d: %v", seed, err)
		}
	}
	if _, err := sim.RunAsync(r, p, sim.SlowLinkDelay{SlowFrom: 2, Fast: 0.001}, sim.Options{}); err != nil {
		t.Errorf("slow link: %v", err)
	}
}

// livelockProtocol never halts: every token is forwarded forever.
type livelockProtocol struct{}

func (livelockProtocol) Name() string { return "livelock" }
func (livelockProtocol) NewMachine(id ring.Label) core.Machine {
	return &livelockMachine{id: id}
}

type livelockMachine struct{ id ring.Label }

func (m *livelockMachine) Init(out *core.Outbox) string {
	out.Send(core.Token(m.id))
	return "L1"
}
func (m *livelockMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	out.Send(msg)
	return "L2", nil
}
func (m *livelockMachine) Halted() bool        { return false }
func (m *livelockMachine) Status() core.Status { return core.Status{} }
func (m *livelockMachine) StateName() string   { return "L" }
func (m *livelockMachine) SpaceBits() int      { return 1 }
func (m *livelockMachine) Fingerprint() string { return "L" }

func TestActionBudgetStopsLivelock(t *testing.T) {
	r := ring.Distinct(4)
	if _, err := sim.RunSync(r, livelockProtocol{}, sim.Options{MaxActions: 1000}); !errors.Is(err, sim.ErrMaxActions) {
		t.Errorf("sync livelock: err = %v, want ErrMaxActions", err)
	}
	if _, err := sim.RunAsync(r, livelockProtocol{}, sim.ConstantDelay(1), sim.Options{MaxActions: 1000}); !errors.Is(err, sim.ErrMaxActions) {
		t.Errorf("async livelock: err = %v, want ErrMaxActions", err)
	}
}

// stuckProtocol halts its leader immediately while a neighbor still sends
// to it: the engines must flag the model violation.
type stuckProtocol struct{}

func (stuckProtocol) Name() string { return "stuck" }
func (stuckProtocol) NewMachine(id ring.Label) core.Machine {
	return &stuckMachine{id: id}
}

type stuckMachine struct {
	id     ring.Label
	halted bool
}

func (m *stuckMachine) Init(out *core.Outbox) string {
	if m.id == 1 {
		m.halted = true // halts without ever reading its link
	} else {
		out.Send(core.Token(m.id))
	}
	return "X1"
}
func (m *stuckMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	out.Send(msg)
	return "X2", nil
}
func (m *stuckMachine) Halted() bool        { return m.halted }
func (m *stuckMachine) Status() core.Status { return core.Status{} }
func (m *stuckMachine) StateName() string   { return "X" }
func (m *stuckMachine) SpaceBits() int      { return 1 }
func (m *stuckMachine) Fingerprint() string { return "X" }

func TestDeliveryToHaltedProcessFails(t *testing.T) {
	r := ring.Distinct(3)
	if _, err := sim.RunSync(r, stuckProtocol{}, sim.Options{MaxActions: 1000}); err == nil {
		t.Error("sync: message at halted process must fail")
	}
	if _, err := sim.RunAsync(r, stuckProtocol{}, sim.ConstantDelay(1), sim.Options{MaxActions: 1000}); err == nil {
		t.Error("async: delivery to halted process must fail")
	}
}

// usurperProtocol has every process declare itself leader: the spec checker
// must catch the second declaration.
type usurperProtocol struct{}

func (usurperProtocol) Name() string { return "usurper" }
func (usurperProtocol) NewMachine(id ring.Label) core.Machine {
	return &usurperMachine{id: id}
}

type usurperMachine struct {
	id     ring.Label
	halted bool
}

func (m *usurperMachine) Init(out *core.Outbox) string {
	return "U1"
}
func (m *usurperMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	return "U2", nil
}
func (m *usurperMachine) Halted() bool { return m.halted }
func (m *usurperMachine) Status() core.Status {
	return core.Status{IsLeader: true, Done: true, Leader: m.id, LeaderSet: true}
}
func (m *usurperMachine) StateName() string   { return "U" }
func (m *usurperMachine) SpaceBits() int      { return 1 }
func (m *usurperMachine) Fingerprint() string { return "U" }

func TestSpecViolationSurfaces(t *testing.T) {
	r := ring.Distinct(3)
	_, err := sim.RunSync(r, usurperProtocol{}, sim.Options{MaxActions: 100})
	var v *spec.Violation
	if !errors.As(err, &v) || v.Bullet != 1 {
		t.Errorf("err = %v, want spec bullet 1 violation", err)
	}
}

func TestAsyncDeterminism(t *testing.T) {
	r := ring.Distinct(8)
	p, err := core.NewAProtocol(2, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.RunAsync(r, p, sim.NewUniformDelay(99, 0.01), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunAsync(r, p, sim.NewUniformDelay(99, 0.01), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.TimeUnits != b.TimeUnits || a.Messages != b.Messages || a.LeaderIndex != b.LeaderIndex {
		t.Errorf("same seed produced different runs: %+v vs %+v", a, b)
	}
}

func TestTraceEventAccounting(t *testing.T) {
	r := ring.Distinct(5)
	p, err := core.NewAProtocol(1, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	mem := &trace.Mem{}
	res, err := sim.RunSync(r, p, sim.Options{Sink: mem})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Op]int{}
	for _, e := range mem.Events {
		counts[e.Op]++
	}
	if counts[trace.OpInit] != r.N() {
		t.Errorf("init events = %d, want %d", counts[trace.OpInit], r.N())
	}
	if counts[trace.OpSend] != res.Messages {
		t.Errorf("send events = %d, want %d", counts[trace.OpSend], res.Messages)
	}
	if counts[trace.OpDeliver] != res.Messages {
		t.Errorf("deliver events = %d, want %d (all messages received)", counts[trace.OpDeliver], res.Messages)
	}
	if counts[trace.OpHalt] != r.N() {
		t.Errorf("halt events = %d, want %d", counts[trace.OpHalt], r.N())
	}
}

func TestMessagesByKind(t *testing.T) {
	r := ring.Ring122()
	p, err := core.NewAProtocol(2, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.MessagesByKind {
		total += c
	}
	if total != res.Messages {
		t.Errorf("kind counts sum to %d, want %d", total, res.Messages)
	}
	if res.MessagesByKind[core.KindFinish] != r.N() {
		t.Errorf("FINISH count = %d, want n = %d (one lap)", res.MessagesByKind[core.KindFinish], r.N())
	}
}

func TestSlowLinkStretchesTime(t *testing.T) {
	r := ring.Distinct(6)
	fast, err := sim.RunAsync(r, announceProtocol{}, sim.SlowLinkDelay{SlowFrom: -1, Fast: 0.001}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sim.RunAsync(r, announceProtocol{}, sim.SlowLinkDelay{SlowFrom: 2, Fast: 0.001}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.TimeUnits <= fast.TimeUnits {
		t.Errorf("slow link time %v not larger than all-fast %v", slow.TimeUnits, fast.TimeUnits)
	}
	if slow.TimeUnits < 1 {
		t.Errorf("the announcement crosses the slow link once: time %v must be ≥ 1", slow.TimeUnits)
	}
}

func TestSyncProbeSeesInitialConfigAndStops(t *testing.T) {
	r := ring.Distinct(4)
	p, err := core.NewAProtocol(1, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	res, err := sim.SyncProbe(r, p, sim.Options{}, func(step int, fps []string) bool {
		if len(fps) != r.N() {
			t.Fatalf("probe got %d fingerprints, want %d", len(fps), r.N())
		}
		steps = append(steps, step)
		return step < 3 // stop early
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || steps[0] != 0 {
		t.Errorf("probe must see the initial configuration first, got %v", steps)
	}
	if steps[len(steps)-1] != 3 {
		t.Errorf("probe must stop at step 3, got %v", steps)
	}
	if res.Steps > 3 {
		t.Errorf("early-stopped run reports %d steps", res.Steps)
	}
}

func TestMaxLinkDepthAccounting(t *testing.T) {
	// The fifo burst protocol puts its whole burst (plus the announcement)
	// on one link at once.
	r := ring.Distinct(4)
	res, err := sim.RunSync(r, fifoProtocol{burst: 7}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkDepth != 8 {
		t.Errorf("sync burst: MaxLinkDepth = %d, want 8 (7 tokens + announcement)", res.MaxLinkDepth)
	}
	// An adversarially slow link makes Ak's tokens pile up behind it.
	r2 := ring.Distinct(12)
	p, err := core.NewAProtocol(2, r2.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sim.RunAsync(r2, p, sim.SlowLinkDelay{SlowFrom: 3, Fast: 0.01}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.MaxLinkDepth < r2.N()/2 {
		t.Errorf("slow link: MaxLinkDepth = %d, expected a pile-up of ≈n tokens", slow.MaxLinkDepth)
	}
}

// TestLossBreaksTheAlgorithms injects message loss and verifies the
// reliable-links assumption is load-bearing: dropping Ak's ⟨FINISH⟩
// leaves the tokens circulating forever (caught by the action budget),
// and dropping Bk's ⟨PHASE_SHIFT⟩ stalls the phase barrier.
func TestLossBreaksTheAlgorithms(t *testing.T) {
	r := ring.Distinct(6)

	// Ak: drop the first FINISH ever sent.
	pA, err := core.NewAProtocol(2, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	droppedFinish := false
	mem := &trace.Mem{}
	var dropSeq = -1
	// First pass: find the send sequence number of the first FINISH.
	if _, err := sim.RunAsync(r, pA, sim.ConstantDelay(1), sim.Options{Sink: mem}); err != nil {
		t.Fatal(err)
	}
	seq := 0
	for _, e := range mem.Events {
		if e.Op == trace.OpSend {
			if e.Msg.Kind == core.KindFinish && dropSeq < 0 {
				dropSeq = seq
			}
			seq++
		}
	}
	if dropSeq < 0 {
		t.Fatal("no FINISH observed in the reference run")
	}
	_, err = sim.RunAsync(r, pA, sim.ConstantDelay(1), sim.Options{
		MaxActions: 200_000,
		Drop: func(_, s int) bool {
			if s == dropSeq {
				droppedFinish = true
				return true
			}
			return false
		},
	})
	if !droppedFinish {
		t.Fatal("drop injector never fired")
	}
	if err == nil {
		t.Fatal("Ak terminated correctly despite losing FINISH — reliability not load-bearing?")
	}

	// Bk: drop every 25th message; the phase barrier cannot complete.
	pB, err := core.NewBProtocol(2, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunAsync(r, pB, sim.ConstantDelay(1), sim.Options{
		MaxActions: 200_000,
		Drop:       func(_, s int) bool { return s%25 == 24 },
	})
	if err == nil {
		t.Fatal("Bk terminated correctly despite message loss")
	}
}

func TestUniformDelayStaysInRange(t *testing.T) {
	d := sim.NewUniformDelay(5, 0.25)
	for i := 0; i < 1000; i++ {
		v := d.Delay(0, i)
		if v <= 0 || v > 1 {
			t.Fatalf("delay %v out of (0, 1]", v)
		}
		if v < 0.25 {
			t.Fatalf("delay %v below configured floor", v)
		}
	}
}
