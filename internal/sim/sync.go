package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
)

// delivery is one enabled action of a synchronous step: a pending initial
// action, or the delivery of the head message of the incoming link.
type delivery struct {
	proc int
	msg  core.Message
	has  bool
	init bool
}

// RunSync executes the protocol's synchronous execution on r: at each step
// every enabled process executes exactly one enabled action, based on the
// configuration at the start of the step; messages sent in step t are
// receivable from step t+1 on. This is the execution the lower-bound
// argument of Lemma 1 counts steps of. The run ends at the terminal
// configuration (no process enabled).
//
// The returned Result is always populated with the accounting gathered so
// far, even when err is non-nil (spec violations are returned as errors
// wrapping *spec.Violation).
func RunSync(r *ring.Ring, p core.Protocol, opts Options) (*Result, error) {
	e := newEngine(r, p, opts)
	n := e.n

	// links[i] is the FIFO queue of link (p_i, p_i+1).
	links := make([][]core.Message, n)
	initPending := make([]bool, n)
	for i := range initPending {
		initPending[i] = true
	}
	var out core.Outbox // reused across actions; contents copied into links

	// acts is reused across steps: the enabled set is at most n entries,
	// so one allocation serves the whole run.
	acts := make([]delivery, 0, n)

	step := 0
	for {
		// Determine the enabled set from the start-of-step configuration.
		acts = acts[:0]
		for i := 0; i < n; i++ {
			m := e.machines[i]
			from := (i - 1 + n) % n
			switch {
			case initPending[i]:
				acts = append(acts, delivery{proc: i, init: true})
			case len(links[from]) > 0:
				if m.Halted() {
					return e.res, fmt.Errorf("sim: message %s pending at halted process %d", links[from][0], i)
				}
				acts = append(acts, delivery{proc: i, msg: links[from][0], has: true})
			}
		}
		if len(acts) == 0 {
			break
		}
		step++
		if e.res.Actions+len(acts) > e.maxAct {
			return e.res, fmt.Errorf("%w at step %d", ErrMaxActions, step)
		}

		// Pop consumed heads before executing, so every action observes the
		// start-of-step configuration.
		for _, d := range acts {
			if d.has {
				from := (d.proc - 1 + n) % n
				links[from] = links[from][1:]
			}
		}

		// Execute all enabled processes. Appending each process's sends to
		// its outgoing link immediately is equivalent to staging them until
		// the end of the step: this step's deliveries were popped above,
		// and process i only ever appends to link i, so no action of this
		// step can observe another's output.
		for _, d := range acts {
			out.Reset()
			var action string
			var err error
			if d.init {
				initPending[d.proc] = false
				action = e.machines[d.proc].Init(&out)
				err = e.afterAction(d.proc, action, opInit(), core.Message{}, step, 0)
			} else {
				action, err = e.machines[d.proc].Receive(d.msg, &out)
				if err == nil {
					err = e.afterAction(d.proc, action, opDeliver(), d.msg, step, 0)
				}
			}
			if err != nil {
				return e.res, err
			}
			if sent := out.Messages(); len(sent) > 0 {
				e.recordSends(d.proc, sent, step, 0)
				links[d.proc] = append(links[d.proc], sent...)
				if len(links[d.proc]) > e.res.MaxLinkDepth {
					e.res.MaxLinkDepth = len(links[d.proc])
				}
			}
		}
	}

	e.res.Steps = step
	e.res.TimeUnits = float64(step)
	linksEmpty := true
	for _, l := range links {
		if len(l) > 0 {
			linksEmpty = false
		}
	}
	if err := e.finalize(linksEmpty); err != nil {
		return e.res, err
	}
	return e.res, nil
}

// SyncProbe runs the synchronous execution while invoking probe after every
// step with the step number and the machines' fingerprints at the end of
// that step. It is used by the Lemma 1 indistinguishability check, which
// compares per-step states across two rings. Configuration fingerprints at
// step 0 (the initial configuration) are probed before any action.
func SyncProbe(r *ring.Ring, p core.Protocol, opts Options, probe func(step int, fingerprints []string) bool) (*Result, error) {
	e := newEngine(r, p, opts)
	n := e.n
	links := make([][]core.Message, n)
	initPending := make([]bool, n)
	for i := range initPending {
		initPending[i] = true
	}
	fingerprints := func() []string {
		fp := make([]string, n)
		for i, m := range e.machines {
			fp[i] = m.Fingerprint()
		}
		return fp
	}
	if !probe(0, fingerprints()) {
		return e.res, nil
	}

	acts := make([]delivery, 0, n)
	staged := make([][]core.Message, n)

	step := 0
	for {
		acts = acts[:0]
		for i := 0; i < n; i++ {
			from := (i - 1 + n) % n
			switch {
			case initPending[i]:
				acts = append(acts, delivery{proc: i, init: true})
			case len(links[from]) > 0 && !e.machines[i].Halted():
				acts = append(acts, delivery{proc: i, msg: links[from][0], has: true})
			}
		}
		if len(acts) == 0 {
			break
		}
		step++
		if e.res.Actions+len(acts) > e.maxAct {
			return e.res, fmt.Errorf("%w at step %d", ErrMaxActions, step)
		}
		for _, d := range acts {
			if d.has {
				from := (d.proc - 1 + n) % n
				links[from] = links[from][1:]
			}
		}
		for i := range staged {
			staged[i] = nil
		}
		for _, d := range acts {
			var out core.Outbox
			var err error
			if d.init {
				initPending[d.proc] = false
				action := e.machines[d.proc].Init(&out)
				err = e.afterAction(d.proc, action, opInit(), core.Message{}, step, 0)
			} else {
				action, rerr := e.machines[d.proc].Receive(d.msg, &out)
				err = rerr
				if err == nil {
					err = e.afterAction(d.proc, action, opDeliver(), d.msg, step, 0)
				}
			}
			if err != nil {
				return e.res, err
			}
			staged[d.proc] = out.Drain()
		}
		for i := 0; i < n; i++ {
			if len(staged[i]) > 0 {
				e.recordSends(i, staged[i], step, 0)
				links[i] = append(links[i], staged[i]...)
			}
		}
		if !probe(step, fingerprints()) {
			e.res.Steps = step
			return e.res, nil
		}
	}
	e.res.Steps = step
	e.res.TimeUnits = float64(step)
	return e.res, nil
}
