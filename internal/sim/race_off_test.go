//go:build !race

package sim_test

const raceEnabled = false
