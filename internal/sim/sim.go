// Package sim is the deterministic asynchronous message-passing substrate:
// it executes a core.Protocol on a ring.Ring under the model of §II —
// reliable FIFO links, atomic guarded actions, fair activation — with
// exact accounting of the quantities the paper's theorems bound:
// synchronous steps (Lemma 1), time units in Tel's normalization (message
// delay ≤ 1, processing time 0), message count, and peak per-process space
// in bits.
//
// Two execution modes are provided. RunSync is the synchronous execution
// used by the impossibility argument: at each step every enabled process
// executes exactly one action. RunAsync is event-driven with per-message
// delays from a pluggable DelayModel (constant 1 reproduces the worst-case
// time-unit measure; random and adversarial models exercise asynchrony).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/spec"
	"repro/internal/trace"
)

// DefaultMaxActions caps the number of executed actions when
// Options.MaxActions is zero, guarding against non-terminating (buggy)
// protocols.
const DefaultMaxActions = 200_000_000

// Options tunes a run. The zero value is usable.
type Options struct {
	// MaxActions aborts the run after this many executed actions
	// (DefaultMaxActions when 0).
	MaxActions int
	// Sink receives trace events (discarded when nil).
	Sink trace.Sink
	// DisableSpec turns off the leader-election specification checker,
	// for protocols solving a different problem (e.g. the bounded-n
	// decision protocol, which may legitimately terminate leaderless).
	// Model-level checks (FIFO, no delivery after halt, empty terminal
	// links) remain active.
	DisableSpec bool
	// Drop, when non-nil, is a fault injector for RunAsync: a message for
	// which it returns true is silently lost instead of delivered. The
	// paper's model assumes reliable links; injecting loss demonstrates
	// that assumption is load-bearing (the algorithms livelock or violate
	// the spec — see the fault-injection tests). Dropped messages still
	// count as sends.
	Drop func(from, seq int) bool
}

// Result carries the outcome and accounting of one execution.
type Result struct {
	// Protocol is the protocol's display name.
	Protocol string
	// N is the ring size.
	N int
	// Steps is the number of synchronous steps (RunSync) or message
	// deliveries (RunAsync).
	Steps int
	// Actions is the total number of executed actions, inits included.
	Actions int
	// TimeUnits is the execution time in the paper's time-unit measure:
	// equal to Steps for synchronous runs, and to the largest delivery
	// timestamp for asynchronous runs.
	TimeUnits float64
	// Messages is the total number of sends (equal to receives on
	// successful termination, since terminal links are empty).
	Messages int
	// MessagesByKind breaks Messages down by message kind.
	MessagesByKind map[core.Kind]int
	// TotalBits is the total payload cost of all sends in bits
	// (core.Message.Bits) — the unit of the Lavault–Louchard expected-bit
	// bounds (EXPERIMENTS.md E14). A pure function of the message
	// sequence, so all engines agree on it exactly.
	TotalBits int
	// BitsByRound breaks TotalBits down by the messages' Round field
	// (index = round). Deterministic protocols leave Round at 0, so their
	// whole total lands in BitsByRound[0].
	BitsByRound []int
	// RandDraws counts fresh random-id draws (hop-1 RAND_TOKEN sends) —
	// zero for the deterministic protocols.
	RandDraws int
	// PeakSpaceBits is the maximum over processes of the peak SpaceBits
	// observed after any action.
	PeakSpaceBits int
	// MaxLinkDepth is the largest FIFO queue length reached on any link —
	// the capacity an implementation's links would need (the goroutine
	// engine's unbounded pumps exist because this can reach Θ(n) for Ak).
	MaxLinkDepth int
	// PeakSpacePerProc is that peak for each process.
	PeakSpacePerProc []int
	// LeaderIndex is the elected process's index (-1 if none).
	LeaderIndex int
	// Statuses is the terminal status of every process.
	Statuses []core.Status
	// Halted reports whether every process halted with all links empty.
	Halted bool
}

// ErrMaxActions is wrapped by run errors caused by exceeding
// Options.MaxActions.
var ErrMaxActions = errors.New("sim: action budget exhausted (non-terminating execution?)")

// engine is the shared execution core of both modes.
type engine struct {
	r         *ring.Ring
	n         int
	labelBits int
	machines  []core.Machine
	checker   *spec.Checker
	sink      trace.Sink

	res       *Result
	lastPhase []int
	maxAct    int
	noSpec    bool
	// kindCounts accumulates per-kind message counts without map work on
	// the hot path; finalize publishes it as Result.MessagesByKind.
	kindCounts [8]int

	// ids and haltedBuf are scratch-provided buffers finalize fills instead
	// of allocating (nil outside the Into variants).
	ids       []ring.Label
	haltedBuf []bool
}

func newEngine(r *ring.Ring, p core.Protocol, opts Options) *engine {
	n := r.N()
	e := &engine{
		r:         r,
		n:         n,
		labelBits: r.LabelBits(),
		checker:   spec.New(n),
		sink:      opts.Sink,
		maxAct:    opts.MaxActions,
		noSpec:    opts.DisableSpec,
	}
	if e.sink == nil {
		e.sink = trace.Nop{}
	}
	if e.maxAct <= 0 {
		e.maxAct = DefaultMaxActions
	}
	e.machines = make([]core.Machine, n)
	for i := 0; i < n; i++ {
		e.machines[i] = core.NewMachineFor(p, i, r.Label(i))
	}
	e.lastPhase = make([]int, n)
	e.res = &Result{
		Protocol:         p.Name(),
		N:                n,
		MessagesByKind:   make(map[core.Kind]int),
		PeakSpacePerProc: make([]int, n),
		LeaderIndex:      -1,
	}
	return e
}

// afterAction performs the per-action bookkeeping: spec observation, space
// tracking, phase and halt events. step/time locate the action for traces.
func (e *engine) afterAction(i int, action string, op trace.Op, msg core.Message, step int, tm float64) error {
	m := e.machines[i]
	e.res.Actions++
	e.sink.Record(trace.Event{Op: op, Step: step, Time: tm, Proc: i, Action: action, Msg: msg, State: m.StateName()})
	if sp := m.SpaceBits(); sp > e.res.PeakSpacePerProc[i] {
		e.res.PeakSpacePerProc[i] = sp
	}
	if pr, ok := m.(core.PhaseReporter); ok {
		if ph := pr.Phase(); ph > e.lastPhase[i] {
			for p := e.lastPhase[i] + 1; p <= ph; p++ {
				e.sink.Record(trace.Event{Op: trace.OpPhase, Step: step, Time: tm, Proc: i, Phase: p, Guest: pr.Guest(), Active: pr.Active()})
			}
			e.lastPhase[i] = ph
		}
	}
	if m.Halted() {
		e.sink.Record(trace.Event{Op: trace.OpHalt, Step: step, Time: tm, Proc: i, State: m.StateName()})
	}
	if !e.noSpec {
		if err := e.checker.Observe(i, m.Status()); err != nil {
			return err
		}
	}
	return nil
}

// recordSends accounts and traces the messages msgs sent by process i.
func (e *engine) recordSends(i int, msgs []core.Message, step int, tm float64) {
	for _, m := range msgs {
		e.res.Messages++
		if int(m.Kind) < len(e.kindCounts) {
			e.kindCounts[m.Kind]++
		} else {
			e.res.MessagesByKind[m.Kind]++
		}
		bits := m.Bits(e.labelBits, e.n)
		e.res.TotalBits += bits
		if round := int(m.Round); round < len(e.res.BitsByRound) {
			e.res.BitsByRound[round] += bits
		} else {
			for len(e.res.BitsByRound) <= round {
				e.res.BitsByRound = append(e.res.BitsByRound, 0)
			}
			e.res.BitsByRound[round] = bits
		}
		if m.Kind == core.KindRandToken && m.Hop == 1 {
			e.res.RandDraws++
		}
		e.sink.Record(trace.Event{Op: trace.OpSend, Step: step, Time: tm, Proc: i, Msg: m, Bits: bits})
	}
}

// finalize validates the terminal configuration and fills the result.
func (e *engine) finalize(linksEmpty bool) error {
	for kind, c := range e.kindCounts {
		if c > 0 {
			e.res.MessagesByKind[core.Kind(kind)] += c
		}
	}
	// Reuse scratch-provided buffers when present (the Into variants); a
	// fresh Result's slices are nil, so the legacy paths allocate exactly
	// as before.
	if cap(e.res.Statuses) >= e.n {
		e.res.Statuses = e.res.Statuses[:e.n]
	} else {
		e.res.Statuses = make([]core.Status, e.n)
	}
	ids := e.ids
	if cap(ids) >= e.n {
		ids = ids[:e.n]
	} else {
		ids = make([]ring.Label, e.n)
	}
	halted := e.haltedBuf
	if cap(halted) >= e.n {
		halted = halted[:e.n]
	} else {
		halted = make([]bool, e.n)
	}
	for i, m := range e.machines {
		e.res.Statuses[i] = m.Status()
		ids[i] = e.r.Label(i)
		halted[i] = m.Halted()
	}
	for _, sp := range e.res.PeakSpacePerProc {
		if sp > e.res.PeakSpaceBits {
			e.res.PeakSpaceBits = sp
		}
	}
	if e.noSpec {
		if !linksEmpty {
			return fmt.Errorf("sim: terminal configuration has undelivered messages")
		}
		for i, h := range halted {
			if !h {
				return fmt.Errorf("sim: process %d did not halt", i)
			}
		}
		for i, st := range e.res.Statuses {
			if st.IsLeader {
				e.res.LeaderIndex = i
			}
		}
		e.res.Halted = true
		return nil
	}
	leader, err := e.checker.Finalize(ids, halted)
	if err != nil {
		e.res.LeaderIndex = e.checker.LeaderIndex()
		return err
	}
	if !linksEmpty {
		return fmt.Errorf("sim: terminal configuration has undelivered messages")
	}
	e.res.LeaderIndex = leader
	e.res.Halted = true
	return nil
}

// DelayModel assigns each message a transmission delay in (0, 1] time
// units, per Tel's normalization. seq is the global send sequence number,
// from the sending process's index.
type DelayModel interface {
	Delay(from, seq int) float64
}

// ConstantDelay delivers every message after a fixed delay. ConstantDelay(1)
// measures the paper's worst-case time-unit count.
type ConstantDelay float64

// Delay implements DelayModel.
func (c ConstantDelay) Delay(int, int) float64 { return float64(c) }

// UniformDelay draws i.i.d. delays uniformly from (lo, 1]. It models a
// fair asynchronous schedule.
type UniformDelay struct {
	rng *rand.Rand
	lo  float64
}

// NewUniformDelay returns a UniformDelay seeded deterministically.
func NewUniformDelay(seed int64, lo float64) *UniformDelay {
	return &UniformDelay{rng: rand.New(rand.NewSource(seed)), lo: lo}
}

// Delay implements DelayModel.
func (u *UniformDelay) Delay(int, int) float64 {
	d := u.lo + (1-u.lo)*u.rng.Float64()
	if d <= 0 {
		d = 1e-9
	}
	return d
}

// SlowLinkDelay is an adversarial schedule: one link takes the full unit
// delay while all others are fast. It stresses the FIFO barrier reasoning
// of Bk (Observation 1).
type SlowLinkDelay struct {
	// SlowFrom is the sender index of the slow link.
	SlowFrom int
	// Fast is the delay of all other links (must be in (0, 1]).
	Fast float64
}

// Delay implements DelayModel.
func (s SlowLinkDelay) Delay(from, _ int) float64 {
	if from == s.SlowFrom {
		return 1
	}
	return s.Fast
}
