package sim

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/spec"
)

// move is one scheduling decision during exploration: run a pending
// initial action, or deliver the head message of a link.
type move struct {
	init bool
	idx  int // process index (init) or link index (deliver)
}

// ExploreResult reports an exhaustive exploration of the schedule space.
type ExploreResult struct {
	// States is the number of distinct reachable configurations.
	States int
	// Terminals is the number of distinct terminal configurations
	// (confluence means exactly 1).
	Terminals int
	// LeaderIndex is the elected process in the (unique) terminal
	// configuration.
	LeaderIndex int
	// Messages is the total message count, identical in every terminal.
	Messages int
	// MaxLinkDepth is the largest FIFO queue length observed anywhere in
	// the state space — an upper bound on required link capacity.
	MaxLinkDepth int
	// Cloned reports whether branching used machine clones (all machines
	// implement core.Cloner) or prefix replay (the fallback).
	Cloned bool
}

// exploreConfig is one configuration of the explored system.
type exploreConfig struct {
	machines []core.Machine
	links    [][]core.Message
	initLeft []bool
	sends    int
	checker  *spec.Checker
}

// explorer bundles the configuration-space primitives shared by the
// serial DFS (ExploreAll) and the worker-pool search (ExploreAllParallel):
// building, cloning, advancing and fingerprinting configurations. Its
// methods only touch the configuration passed in, so distinct
// configurations can be expanded concurrently.
type explorer struct {
	r *ring.Ring
	p core.Protocol
	n int
}

func newExplorer(r *ring.Ring, p core.Protocol) *explorer {
	return &explorer{r: r, p: p, n: r.N()}
}

// canClone reports whether every machine implements core.Cloner.
func (x *explorer) canClone() bool {
	for i := 0; i < x.n; i++ {
		if _, ok := core.NewMachineFor(x.p, i, x.r.Label(i)).(core.Cloner); !ok {
			return false
		}
	}
	return true
}

// fresh returns the initial configuration.
func (x *explorer) fresh() *exploreConfig {
	c := &exploreConfig{
		machines: make([]core.Machine, x.n),
		links:    make([][]core.Message, x.n),
		initLeft: make([]bool, x.n),
		checker:  spec.New(x.n),
	}
	for i := 0; i < x.n; i++ {
		c.machines[i] = core.NewMachineFor(x.p, i, x.r.Label(i))
		c.initLeft[i] = true
	}
	return c
}

// clone deep-copies c (requires canClone).
func (x *explorer) clone(c *exploreConfig) *exploreConfig {
	cp := &exploreConfig{
		machines: make([]core.Machine, x.n),
		links:    make([][]core.Message, x.n),
		initLeft: make([]bool, x.n),
		sends:    c.sends,
		checker:  c.checker.Clone(),
	}
	for i := 0; i < x.n; i++ {
		cp.machines[i] = c.machines[i].(core.Cloner).Clone()
		if len(c.links[i]) > 0 {
			cp.links[i] = append([]core.Message(nil), c.links[i]...)
		}
		cp.initLeft[i] = c.initLeft[i]
	}
	return cp
}

// apply executes one move on c in place.
func (x *explorer) apply(c *exploreConfig, mv move) error {
	var out core.Outbox
	var proc int
	if mv.init {
		proc = mv.idx
		if !c.initLeft[proc] {
			return fmt.Errorf("sim: explore diverged (double init)")
		}
		c.initLeft[proc] = false
		c.machines[proc].Init(&out)
	} else {
		link := mv.idx
		proc = (link + 1) % x.n
		if len(c.links[link]) == 0 {
			return fmt.Errorf("sim: explore diverged (empty link)")
		}
		msg := c.links[link][0]
		c.links[link] = c.links[link][1:]
		if c.machines[proc].Halted() {
			return fmt.Errorf("sim: delivery to halted process %d during exploration", proc)
		}
		if _, err := c.machines[proc].Receive(msg, &out); err != nil {
			return err
		}
	}
	if err := c.checker.Observe(proc, c.machines[proc].Status()); err != nil {
		return err
	}
	sent := out.Drain()
	c.sends += len(sent)
	c.links[proc] = append(c.links[proc], sent...)
	return nil
}

// fingerprint canonically serializes c: machine states plus link contents.
func (x *explorer) fingerprint(c *exploreConfig) string {
	var b strings.Builder
	for i := 0; i < x.n; i++ {
		fmt.Fprintf(&b, "|p%d:%v:%s", i, c.initLeft[i], c.machines[i].Fingerprint())
	}
	for i, l := range c.links {
		fmt.Fprintf(&b, "|l%d:", i)
		for _, m := range l {
			b.WriteString(m.String())
		}
	}
	return b.String()
}

// moves returns the enabled moves of c (empty means terminal).
func (x *explorer) moves(c *exploreConfig) ([]move, error) {
	var ms []move
	for i := 0; i < x.n; i++ {
		if c.initLeft[i] {
			ms = append(ms, move{init: true, idx: i})
		}
	}
	for i, l := range c.links {
		if len(l) == 0 {
			continue
		}
		to := (i + 1) % x.n
		if c.initLeft[to] {
			// §II: the initial action is executed first in every
			// execution — the message waits until the receiver has run
			// its init.
			continue
		}
		if c.machines[to].Halted() {
			return nil, fmt.Errorf("sim: message %s pending at halted process %d", l[0], to)
		}
		ms = append(ms, move{idx: i})
	}
	return ms, nil
}

// terminalOutcome finalizes the spec checker of a terminal configuration
// and returns the elected leader index.
func (x *explorer) terminalOutcome(c *exploreConfig) (int, error) {
	ids := make([]ring.Label, x.n)
	halted := make([]bool, x.n)
	for i := 0; i < x.n; i++ {
		ids[i] = x.r.Label(i)
		halted[i] = c.machines[i].Halted()
	}
	return c.checker.Finalize(ids, halted)
}

// ExploreAll enumerates every asynchronous schedule of p on r — all
// interleavings of initial actions and per-link FIFO deliveries — by
// depth-first search over the configuration graph with memoization on
// full configuration fingerprints. It verifies that every execution
// satisfies the specification and that all terminal configurations agree
// on the leader, the per-process statuses, and the message count
// (outcome confluence, the property Observation 1 and the engine
// cross-validation rely on).
//
// When the protocol's machines implement core.Cloner (all production
// machines here do), branching deep-copies configurations; otherwise each
// configuration is reconstructed by replaying its move prefix. The
// configuration graph of a FIFO ring protocol is a finite lattice, so
// this is exact model checking, feasible for small rings; maxStates
// bounds the search (exceeding it is an error). For multi-core search use
// ExploreAllParallel.
func ExploreAll(r *ring.Ring, p core.Protocol, maxStates int) (*ExploreResult, error) {
	if maxStates <= 0 {
		maxStates = 200_000
	}
	x := newExplorer(r, p)
	res := &ExploreResult{LeaderIndex: -1, Messages: -1}
	seen := make(map[string]bool)
	res.Cloned = x.canClone()

	// replay rebuilds a configuration from scratch (fallback when machines
	// cannot clone).
	replay := func(prefix []move) (*exploreConfig, error) {
		c := x.fresh()
		for _, mv := range prefix {
			if err := x.apply(c, mv); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	// visit processes one configuration; returns the enabled moves (nil
	// for terminal or already-seen states).
	visit := func(c *exploreConfig) ([]move, error) {
		key := x.fingerprint(c)
		if seen[key] {
			return nil, nil
		}
		seen[key] = true
		res.States++
		if res.States > maxStates {
			return nil, fmt.Errorf("sim: exploration exceeded %d states", maxStates)
		}
		for _, l := range c.links {
			if len(l) > res.MaxLinkDepth {
				res.MaxLinkDepth = len(l)
			}
		}
		ms, err := x.moves(c)
		if err != nil {
			return nil, err
		}
		if len(ms) > 0 {
			return ms, nil
		}
		// Terminal configuration: validate the spec and record the outcome.
		leader, err := x.terminalOutcome(c)
		if err != nil {
			return nil, err
		}
		if res.Terminals == 0 {
			res.LeaderIndex = leader
			res.Messages = c.sends
			res.Terminals = 1
		} else if res.LeaderIndex != leader || res.Messages != c.sends {
			res.Terminals++
			return nil, fmt.Errorf("sim: schedule-dependent outcome: leader p%d/%d msgs vs p%d/%d msgs",
				leader, c.sends, res.LeaderIndex, res.Messages)
		}
		return nil, nil
	}

	if res.Cloned {
		var dfs func(c *exploreConfig) error
		dfs = func(c *exploreConfig) error {
			ms, err := visit(c)
			if err != nil {
				return err
			}
			for i, mv := range ms {
				next := c
				if i < len(ms)-1 {
					next = x.clone(c) // last branch may consume c itself
				}
				if err := x.apply(next, mv); err != nil {
					return err
				}
				if err := dfs(next); err != nil {
					return err
				}
			}
			return nil
		}
		if err := dfs(x.fresh()); err != nil {
			return res, err
		}
		return res, nil
	}

	var dfs func(prefix []move) error
	dfs = func(prefix []move) error {
		c, err := replay(prefix)
		if err != nil {
			return err
		}
		ms, err := visit(c)
		if err != nil {
			return err
		}
		for _, mv := range ms {
			if err := dfs(append(prefix, mv)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(nil); err != nil {
		return res, err
	}
	return res, nil
}
