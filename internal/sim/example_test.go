package sim_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Run the paper's synchronous execution of Ak on the ring 1-2-2 and read
// the Lemma 1 quantities: step count and message count.
func ExampleRunSync() {
	r := ring.Ring122()
	p, err := core.NewAProtocol(2, r.LabelBits())
	if err != nil {
		panic(err)
	}
	res, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("leader p%d after %d synchronous steps, %d messages\n",
		res.LeaderIndex, res.Steps, res.Messages)
	// Output:
	// leader p0 after 11 synchronous steps, 27 messages
}

// Measure the paper's time-unit complexity: event-driven execution with
// every message taking the full unit delay.
func ExampleRunAsync() {
	r := ring.Ring122()
	p, err := core.NewAProtocol(2, r.LabelBits())
	if err != nil {
		panic(err)
	}
	res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("time %.0f units (bound (2k+2)n = %d)\n", res.TimeUnits, (2*2+2)*r.N())
	// Output:
	// time 10 units (bound (2k+2)n = 18)
}

// Exhaustively model-check every schedule of a small ring: all
// interleavings satisfy the spec and elect the same leader.
func ExampleExploreAll() {
	r := ring.Ring122()
	p, err := core.NewAProtocol(2, r.LabelBits())
	if err != nil {
		panic(err)
	}
	res, err := sim.ExploreAll(r, p, 100_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d reachable configurations, every schedule elects p%d with %d messages\n",
		res.States, res.LeaderIndex, res.Messages)
	// Output:
	// 94 reachable configurations, every schedule elects p0 with 27 messages
}
