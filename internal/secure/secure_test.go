package secure

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"
)

// testPair runs a full handshake between a client and server joined by
// an in-memory relay the test controls: it returns the two encrypted
// conns plus the raw byte streams between them, so tests can capture,
// tamper with, replay, and truncate sealed records in flight.
//
//	client <-> (c1|c2) <-> TEST <-> (s1|s2) <-> server
type testPair struct {
	client, server *Conn
	// rawFromClient reads the bytes the client wrote; rawToServer
	// forwards bytes to the server (and vice versa).
	rawFromClient, rawToServer net.Conn
	rawFromServer, rawToClient net.Conn
}

func newTestPair(t *testing.T, serverCfg *ServerConfig, clientCfg *ClientConfig) *testPair {
	t.Helper()
	c1, c2 := net.Pipe()
	s1, s2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close(); s1.Close(); s2.Close() })

	type res struct {
		conn *Conn
		err  error
	}
	cch := make(chan res, 1)
	sch := make(chan res, 1)
	go func() {
		conn, err := Client(c1, clientCfg)
		cch <- res{conn, err}
	}()
	go func() {
		conn, err := Server(s2, serverCfg)
		sch <- res{conn, err}
	}()
	// Relay the fixed-size handshake flights.
	relay := func(src, dst net.Conn, n int) {
		t.Helper()
		buf := make([]byte, n)
		if _, err := io.ReadFull(src, buf); err != nil {
			t.Fatalf("relay read: %v", err)
		}
		if _, err := dst.Write(buf); err != nil {
			t.Fatalf("relay write: %v", err)
		}
	}
	relay(c2, s1, hsMsg1Len)
	relay(s1, c2, hsMsg2Len)
	cr := <-cch
	sr := <-sch
	if cr.err != nil {
		t.Fatalf("client handshake: %v", cr.err)
	}
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	return &testPair{
		client: cr.conn, server: sr.conn,
		rawFromClient: c2, rawToServer: s1,
		rawFromServer: s1, rawToClient: c2,
	}
}

func defaultConfigs(t *testing.T) (*ServerConfig, *ClientConfig) {
	t.Helper()
	serverKey, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	clientKey, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return &ServerConfig{Config: Config{Identity: serverKey}},
		&ClientConfig{Config: Config{Identity: clientKey}, ServerKey: serverKey.Public()}
}

// readSealedRecord reads one raw [len|ciphertext] record off a stream.
func readSealedRecord(t *testing.T, src net.Conn) []byte {
	t.Helper()
	hdr := make([]byte, recordHeaderLen)
	if _, err := io.ReadFull(src, hdr); err != nil {
		t.Fatalf("read record header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr)
	rec := make([]byte, recordHeaderLen+int(n))
	copy(rec, hdr)
	if _, err := io.ReadFull(src, rec[recordHeaderLen:]); err != nil {
		t.Fatalf("read record body: %v", err)
	}
	return rec
}

func TestHandshakeAndRoundTrip(t *testing.T) {
	sc, cc := defaultConfigs(t)
	p := newTestPair(t, sc, cc)

	if !p.server.Peer().Equal(cc.Identity.Public()) {
		t.Fatalf("server saw peer %s, want client %s", p.server.Peer(), cc.Identity.Public())
	}
	if !p.client.Peer().Equal(sc.Identity.Public()) {
		t.Fatalf("client saw peer %s, want server %s", p.client.Peer(), sc.Identity.Public())
	}

	// One record each way through the relay.
	go p.client.Write([]byte("ping"))
	rec := readSealedRecord(t, p.rawFromClient)
	if bytes.Contains(rec, []byte("ping")) {
		t.Fatal("plaintext visible on the wire")
	}
	go p.rawToServer.Write(rec)
	buf := make([]byte, 16)
	n, err := p.server.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}

	go p.server.Write([]byte("pong"))
	rec = readSealedRecord(t, p.rawFromServer)
	go p.rawToClient.Write(rec)
	n, err = p.client.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
}

// echoPair joins client and server through transparent pumps and runs
// an echo loop on the server.
func echoPair(t *testing.T, sc *ServerConfig, cc *ClientConfig) (*Conn, *Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	type res struct {
		conn *Conn
		err  error
	}
	cch := make(chan res, 1)
	sch := make(chan res, 1)
	go func() { conn, err := Client(c1, cc); cch <- res{conn, err} }()
	go func() { conn, err := Server(c2, sc); sch <- res{conn, err} }()
	cr := <-cch
	sr := <-sch
	if cr.err != nil {
		t.Fatalf("client handshake: %v", cr.err)
	}
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	return cr.conn, sr.conn
}

func TestEchoSmallAndLarge(t *testing.T) {
	sc, cc := defaultConfigs(t)
	client, server := echoPair(t, sc, cc)

	go func() {
		io.Copy(server, server) // echo
	}()

	small := []byte("hello ring")
	if _, err := client.Write(small); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(small))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, small) {
		t.Fatalf("echo mismatch: %q", got)
	}

	// Larger than one record: must split and reassemble transparently.
	big := make([]byte, 3*DefaultMaxRecord+123)
	rand.Read(big)
	go func() { client.Write(big) }()
	gotBig := make([]byte, len(big))
	if _, err := io.ReadFull(client, gotBig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBig, big) {
		t.Fatal("large echo mismatch")
	}
}

func TestWrongServerKeyFailsFast(t *testing.T) {
	sc, cc := defaultConfigs(t)
	other, _ := GenerateKey()
	cc.ServerKey = other.Public() // client dials with the wrong static

	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	errs := make(chan error, 2)
	go func() { _, err := Client(c1, cc); errs <- err }()
	go func() { _, err := Server(c2, sc); errs <- err; c2.Close() }()
	for i := 0; i < 2; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("handshake succeeded with mismatched server key")
		}
		if !IsHandshakeError(err) {
			t.Fatalf("want *HandshakeError, got %T: %v", err, err)
		}
	}
}

func TestAllowlistRejectsUnknownClient(t *testing.T) {
	sc, cc := defaultConfigs(t)
	allowed, _ := GenerateKey()
	sc.Allowed = []PublicKey{allowed.Public()} // not the client's key

	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	serr := make(chan error, 1)
	go func() { _, err := Server(c2, sc); serr <- err; c2.Close() }()
	go func() { Client(c1, cc) }()
	err := <-serr
	if err == nil || !IsHandshakeError(err) {
		t.Fatalf("want handshake error for unlisted client, got %v", err)
	}
}

func TestPlaintextClientRejected(t *testing.T) {
	sc, _ := defaultConfigs(t)
	sc.HandshakeTimeout = 2 * time.Second
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	serr := make(chan error, 1)
	go func() { _, err := Server(c2, sc); serr <- err }()
	// A plaintext RGV1 client's first flight: magic + a frame. Pad to
	// one full handshake message so the server's read completes.
	flight := make([]byte, hsMsg1Len)
	copy(flight, "RGV1")
	if _, err := c1.Write(flight); err != nil {
		t.Fatal(err)
	}
	err := <-serr
	if err == nil || !IsHandshakeError(err) {
		t.Fatalf("want handshake error for plaintext client, got %v", err)
	}
}

func TestTruncatedHandshakeFailsCleanly(t *testing.T) {
	sc, _ := defaultConfigs(t)
	c1, c2 := net.Pipe()
	defer c2.Close()
	serr := make(chan error, 1)
	go func() { _, err := Server(c2, sc); serr <- err }()
	c1.Write(make([]byte, 40)) // under hsMsg1Len
	c1.Close()                 // sever mid-handshake
	err := <-serr
	if err == nil {
		t.Fatal("truncated handshake accepted")
	}
	if !IsHandshakeError(err) {
		t.Fatalf("want *HandshakeError, got %T: %v", err, err)
	}
}

// attackPair establishes a session where the test relays raw records
// between the two sides and can manipulate them.
func attackPair(t *testing.T) (client, server *Conn, fromClient, toServer net.Conn) {
	t.Helper()
	sc, cc := defaultConfigs(t)
	p := newTestPair(t, sc, cc)
	return p.client, p.server, p.rawFromClient, p.rawToServer
}

func serverReadErr(t *testing.T, server *Conn) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		_, err := server.Read(buf)
		errc <- err
	}()
	select {
	case err := <-errc:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("server read did not return")
		return nil
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	client, server, fromClient, toServer := attackPair(t)
	go client.Write([]byte("ELECT payload"))
	rec := readSealedRecord(t, fromClient)
	rec[len(rec)-1] ^= 0x01 // flip one ciphertext bit
	go toServer.Write(rec)
	if err := serverReadErr(t, server); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("want ErrBadRecord for tampered record, got %v", err)
	}
	// Poisoned: later reads fail the same way without touching the wire.
	if _, err := server.Read(make([]byte, 8)); !errors.Is(err, ErrBadRecord) {
		t.Fatal("bad record error not sticky")
	}
}

func TestReplayedRecordRejected(t *testing.T) {
	client, server, fromClient, toServer := attackPair(t)
	go client.Write([]byte("frame one"))
	rec := readSealedRecord(t, fromClient)
	go toServer.Write(rec)
	buf := make([]byte, 64)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "frame one" {
		t.Fatalf("first delivery failed: %q %v", buf[:n], err)
	}
	// Replay the captured sealed record: nonce counter has moved on,
	// so authentication must fail.
	go toServer.Write(rec)
	if err := serverReadErr(t, server); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("want ErrBadRecord for replayed record, got %v", err)
	}
}

func TestReorderedRecordsRejected(t *testing.T) {
	client, server, fromClient, toServer := attackPair(t)
	go func() {
		client.Write([]byte("first"))
		client.Write([]byte("second"))
	}()
	rec1 := readSealedRecord(t, fromClient)
	rec2 := readSealedRecord(t, fromClient)
	go toServer.Write(rec2) // deliver out of order
	if err := serverReadErr(t, server); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("want ErrBadRecord for reordered record, got %v", err)
	}
	_ = rec1
}

func TestTruncatedRecordSurfacesIOError(t *testing.T) {
	client, server, fromClient, toServer := attackPair(t)
	go client.Write([]byte("will be cut short"))
	rec := readSealedRecord(t, fromClient)
	go func() {
		toServer.Write(rec[:len(rec)-5])
		toServer.Close() // sever mid-record
	}()
	err := serverReadErr(t, server)
	if err == nil {
		t.Fatal("truncated record accepted")
	}
	if errors.Is(err, ErrBadRecord) {
		// Also acceptable would be an I/O error; what matters is that
		// nothing was delivered and nothing panicked.
		t.Logf("truncation surfaced as bad record: %v", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	_, server, _, toServer := attackPair(t)
	hdr := make([]byte, recordHeaderLen)
	binary.BigEndian.PutUint32(hdr, uint32(DefaultMaxRecord+Overhead+1))
	go toServer.Write(hdr)
	if err := serverReadErr(t, server); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("want ErrRecordTooLarge, got %v", err)
	}
}

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "node.key")
	if err := WriteKeyFile(path, k); err != nil {
		t.Fatal(err)
	}
	got, err := LoadKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), k.Bytes()) {
		t.Fatal("private key round trip mismatch")
	}
	if !got.Public().Equal(k.Public()) {
		t.Fatal("public key round trip mismatch")
	}

	// Peer roster round trip.
	var keys []PublicKey
	for i := 0; i < 4; i++ {
		pk, _ := GenerateKey()
		keys = append(keys, pk.Public())
	}
	peersPath := filepath.Join(dir, "peers.keys")
	if err := WritePeerKeys(peersPath, keys); err != nil {
		t.Fatal(err)
	}
	gotKeys, err := LoadPeerKeys(peersPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != len(keys) {
		t.Fatalf("got %d peer keys, want %d", len(gotKeys), len(keys))
	}
	for i := range keys {
		if !gotKeys[i].Equal(keys[i]) {
			t.Fatalf("peer key %d mismatch", i)
		}
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "!!!", "AAAA", "this is not a key"} {
		if _, err := ParsePublicKey(s); err == nil {
			t.Fatalf("ParsePublicKey(%q) accepted", s)
		}
	}
}

// RFC 5869 test case 1 pins the hand-rolled HKDF against the spec.
func TestHKDFVector(t *testing.T) {
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	want, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
	prk := hkdfExtract(salt, ikm)
	okm := hkdfExpand(prk, info, 42)
	if !bytes.Equal(okm, want) {
		t.Fatalf("HKDF mismatch:\n got %x\nwant %x", okm, want)
	}
}

func TestFingerprintStable(t *testing.T) {
	k, _ := GenerateKey()
	fp := k.Public().Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex digits", len(fp))
	}
	reparsed, err := ParsePublicKey(k.Public().String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Fingerprint() != fp {
		t.Fatal("fingerprint changed across encode/parse")
	}
}
