package secure

import (
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

const (
	// Overhead is the AEAD expansion per sealed record (the AES-GCM
	// tag). The nonce is implicit — a per-direction 64-bit counter —
	// so it costs no wire bytes, and a record replayed, reordered, or
	// dropped by the network fails authentication on arrival.
	Overhead = 16

	// recordHeaderLen is the length prefix on every sealed record.
	recordHeaderLen = 4

	// DefaultMaxRecord is the default plaintext budget per record.
	DefaultMaxRecord = 16 * 1024

	// maxRecordLimit caps any configured record budget; GCM nonce/tag
	// safety margins are generous far beyond this, it simply bounds
	// the per-connection scratch buffers.
	maxRecordLimit = 1 << 20
)

var (
	// ErrBadRecord reports a sealed record that failed authentication:
	// flipped bits, a replayed or reordered record (the strict nonce
	// counter makes those fail the tag check), or ciphertext sealed
	// under a different key. The connection is unusable afterwards.
	ErrBadRecord = errors.New("secure: record authentication failed")

	// ErrRecordTooLarge reports a record header announcing a body
	// beyond the receive budget — either a corrupted length or a peer
	// configured with a larger MaxRecord.
	ErrRecordTooLarge = errors.New("secure: record exceeds size budget")

	// errConnClosed is returned from Read/Write after Close.
	errConnClosed = errors.New("secure: connection closed")
)

// IsTransportError reports whether err is a secure-layer record
// failure (authentication or framing). Transports treat these like a
// severed TCP connection: drop the conn and let reconnection heal it,
// because an on-path attacker can trivially cause them.
func IsTransportError(err error) bool {
	return errors.Is(err, ErrBadRecord) || errors.Is(err, ErrRecordTooLarge)
}

// Conn is an encrypted net.Conn. Every Write seals one or more
// records [u32 length | AES-256-GCM ciphertext]; Read opens records and
// buffers plaintext, so length-prefixed protocols layer on top
// unchanged. Each direction keeps its own strict nonce counter —
// record N must arrive as record N.
//
// Reads and writes may run concurrently (one reader, one writer), the
// usual net.Conn contract.
type Conn struct {
	conn net.Conn
	peer PublicKey

	maxPlain int

	wmu     sync.Mutex
	send    cipher.AEAD
	sendCtr uint64
	wbuf    []byte // header + ciphertext scratch, reused across writes

	rmu     sync.Mutex
	recv    cipher.AEAD
	recvCtr uint64
	rbuf    []byte // sealed record scratch, reused across reads
	rplain  []byte // unread decrypted plaintext (window into rbuf)
	readErr error  // sticky: after one bad record the stream is dead
}

func newConn(conn net.Conn, peer PublicKey, sendKey, recvKey []byte, maxRecord int) (*Conn, error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecord
	}
	if maxRecord > maxRecordLimit {
		maxRecord = maxRecordLimit
	}
	send, err := newAEAD(sendKey)
	if err != nil {
		return nil, fmt.Errorf("secure: send cipher: %w", err)
	}
	recv, err := newAEAD(recvKey)
	if err != nil {
		return nil, fmt.Errorf("secure: recv cipher: %w", err)
	}
	return &Conn{
		conn:     conn,
		peer:     peer,
		maxPlain: maxRecord,
		send:     send,
		recv:     recv,
		wbuf:     make([]byte, 0, recordHeaderLen+maxRecord+Overhead),
		rbuf:     make([]byte, 0, maxRecord+Overhead),
	}, nil
}

// Peer returns the authenticated static public key of the other side.
func (c *Conn) Peer() PublicKey { return c.peer }

// nonce fills dst with the implicit record nonce for counter ctr.
func nonce(dst *[12]byte, ctr uint64) {
	binary.BigEndian.PutUint64(dst[4:], ctr)
}

// Write seals p into one or more records and writes them. It never
// fragments below maxPlain, so a protocol batching several frames into
// one Write pays one tag for the whole batch.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.send == nil {
		return 0, errConnClosed
	}
	written := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > c.maxPlain {
			chunk = chunk[:c.maxPlain]
		}
		var n [12]byte
		nonce(&n, c.sendCtr)
		c.sendCtr++
		c.wbuf = c.wbuf[:recordHeaderLen]
		binary.BigEndian.PutUint32(c.wbuf, uint32(len(chunk)+Overhead))
		c.wbuf = c.send.Seal(c.wbuf, n[:], chunk, nil)
		if _, err := c.conn.Write(c.wbuf); err != nil {
			return written, err
		}
		written += len(chunk)
		p = p[len(chunk):]
	}
	return written, nil
}

// Read returns decrypted plaintext, reading and opening the next sealed
// record when the buffer is empty. Any record that fails to open — or a
// header announcing an over-budget record — poisons the connection: the
// error is sticky and every later Read returns it.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.readErr != nil {
		return 0, c.readErr
	}
	if c.recv == nil {
		return 0, errConnClosed
	}
	for len(c.rplain) == 0 {
		if err := c.readRecord(); err != nil {
			// I/O errors (timeouts, EOF mid-stream) are not sticky;
			// a retryable deadline error must not poison the conn.
			if IsTransportError(err) {
				c.readErr = err
			}
			return 0, err
		}
	}
	n := copy(p, c.rplain)
	c.rplain = c.rplain[n:]
	return n, nil
}

func (c *Conn) readRecord() error {
	var hdr [recordHeaderLen]byte
	if _, err := readFullConn(c.conn, hdr[:]); err != nil {
		return err
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	if size < Overhead {
		return fmt.Errorf("%w: sealed length %d below tag size", ErrBadRecord, size)
	}
	if size > c.maxPlain+Overhead {
		return fmt.Errorf("%w: sealed length %d, budget %d", ErrRecordTooLarge, size, c.maxPlain+Overhead)
	}
	c.rbuf = c.rbuf[:size]
	if _, err := readFullConn(c.conn, c.rbuf); err != nil {
		return err
	}
	var n [12]byte
	nonce(&n, c.recvCtr)
	pt, err := c.recv.Open(c.rbuf[:0], n[:], c.rbuf, nil)
	if err != nil {
		return fmt.Errorf("%w (record %d)", ErrBadRecord, c.recvCtr)
	}
	c.recvCtr++
	c.rplain = pt
	return nil
}

// readFullConn is io.ReadFull without the interface indirection cost on
// the error path; a short read mid-record surfaces as the underlying
// error (or io.ErrUnexpectedEOF via the net stack's EOF).
func readFullConn(conn net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := conn.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// CloseWrite half-closes the underlying connection when it supports it
// (TCP FIN), so drain-then-linger shutdown sequences work unchanged.
func (c *Conn) CloseWrite() error {
	if cw, ok := c.conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

func (c *Conn) LocalAddr() net.Addr                { return c.conn.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.conn.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.conn.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.conn.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }
