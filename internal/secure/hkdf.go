package secure

import (
	"crypto/hmac"
	"crypto/sha256"
)

// HKDF-SHA256 (RFC 5869), hand-rolled over crypto/hmac so go.mod stays
// dependency-free. Only the fixed-size shapes the handshake needs.

// hkdfExtract computes PRK = HMAC-SHA256(salt, ikm).
func hkdfExtract(salt, ikm []byte) []byte {
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

// hkdfExpand derives length bytes of output keying material from prk.
// length must be <= 255*32; the handshake only asks for 64.
func hkdfExpand(prk, info []byte, length int) []byte {
	out := make([]byte, 0, length)
	var t []byte
	for i := byte(1); len(out) < length; i++ {
		m := hmac.New(sha256.New, prk)
		m.Write(t)
		m.Write(info)
		m.Write([]byte{i})
		t = m.Sum(nil)
		out = append(out, t...)
	}
	return out[:length]
}
