// Package secure implements the authenticated encryption layer for ring
// links and the RGV1 serving port: X25519 static keys, an IK-style
// handshake (the initiator must already know the responder's static
// public key, and both sides prove possession of their statics), and an
// AES-256-GCM record layer with strict per-direction nonce counters.
//
// Everything is built on the standard library (crypto/ecdh, crypto/hmac,
// crypto/aes); go.mod stays dependency-free. The package deliberately
// exposes a tiny surface — keypairs, two handshake entry points, and a
// net.Conn — so the transports (internal/netring, internal/serve) can
// treat encryption as an opt-in conn wrapper.
//
// Threat model: an active network attacker who can read, inject, replay,
// reorder, truncate, and sever traffic, but who does not hold a valid
// static private key. Out of scope (explicit non-goals): key
// distribution and rotation, identity hiding of the initiator's static
// key against an attacker who already holds the responder's private key,
// and post-compromise forward secrecy beyond per-connection ephemerals.
package secure

import (
	"bufio"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
)

// KeySize is the size of X25519 private and public keys.
const KeySize = 32

// PrivateKey is a static X25519 identity key.
type PrivateKey struct {
	key *ecdh.PrivateKey
	pub PublicKey
}

// PublicKey is a static X25519 public key. The zero value is invalid
// and reports IsZero.
type PublicKey struct {
	key *ecdh.PublicKey
	raw [KeySize]byte
}

// GenerateKey creates a fresh static identity key from crypto/rand.
func GenerateKey() (*PrivateKey, error) {
	k, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secure: generate key: %w", err)
	}
	return wrapPrivate(k), nil
}

func wrapPrivate(k *ecdh.PrivateKey) *PrivateKey {
	p := &PrivateKey{key: k}
	p.pub.key = k.PublicKey()
	copy(p.pub.raw[:], p.pub.key.Bytes())
	return p
}

// Public returns the key's public half.
func (k *PrivateKey) Public() PublicKey { return k.pub }

// Bytes returns the 32-byte private scalar.
func (k *PrivateKey) Bytes() []byte { return k.key.Bytes() }

// String encodes the private scalar for key files.
func (k *PrivateKey) String() string {
	return base64.RawURLEncoding.EncodeToString(k.key.Bytes())
}

// ParsePrivateKey decodes a key in the format produced by
// PrivateKey.String.
func ParsePrivateKey(s string) (*PrivateKey, error) {
	raw, err := base64.RawURLEncoding.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return nil, fmt.Errorf("secure: parse private key: %w", err)
	}
	if len(raw) != KeySize {
		return nil, fmt.Errorf("secure: parse private key: got %d bytes, want %d", len(raw), KeySize)
	}
	k, err := ecdh.X25519().NewPrivateKey(raw)
	if err != nil {
		return nil, fmt.Errorf("secure: parse private key: %w", err)
	}
	return wrapPrivate(k), nil
}

// IsZero reports whether the key is unset.
func (p PublicKey) IsZero() bool { return p.key == nil }

// Bytes returns the 32-byte public key.
func (p PublicKey) Bytes() []byte { return p.raw[:] }

// Equal reports whether two public keys are the same key.
func (p PublicKey) Equal(q PublicKey) bool {
	return !p.IsZero() && !q.IsZero() && p.raw == q.raw
}

// String encodes the public key for key files, flags, and rosters.
func (p PublicKey) String() string {
	return base64.RawURLEncoding.EncodeToString(p.raw[:])
}

// Fingerprint returns the hex SHA-256 of the public key. It identifies
// a peer in metrics, logs, and the per-peer rate limiter.
func (p PublicKey) Fingerprint() string {
	sum := sha256.Sum256(p.raw[:])
	return hex.EncodeToString(sum[:])
}

// ShortFingerprint returns the first 16 hex digits of Fingerprint, for
// log lines.
func (p PublicKey) ShortFingerprint() string { return p.Fingerprint()[:16] }

// ParsePublicKey decodes a key in the format produced by
// PublicKey.String.
func ParsePublicKey(s string) (PublicKey, error) {
	raw, err := base64.RawURLEncoding.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return PublicKey{}, fmt.Errorf("secure: parse public key: %w", err)
	}
	if len(raw) != KeySize {
		return PublicKey{}, fmt.Errorf("secure: parse public key: got %d bytes, want %d", len(raw), KeySize)
	}
	k, err := ecdh.X25519().NewPublicKey(raw)
	if err != nil {
		return PublicKey{}, fmt.Errorf("secure: parse public key: %w", err)
	}
	var p PublicKey
	p.key = k
	copy(p.raw[:], raw)
	return p, nil
}

// WriteKeyFile writes a private key to path with 0600 permissions. The
// format is one base64 line; lines starting with '#' are comments.
func WriteKeyFile(path string, k *PrivateKey) error {
	data := fmt.Sprintf("# ringsec v1 private key (public %s)\n%s\n", k.Public().String(), k.String())
	return os.WriteFile(path, []byte(data), 0o600)
}

// LoadKeyFile reads a private key written by WriteKeyFile.
func LoadKeyFile(path string) (*PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("secure: load key file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return ParsePrivateKey(line)
	}
	return nil, fmt.Errorf("secure: load key file %s: no key line found", path)
}

// LoadPeerKeys reads a roster of public keys, one base64 key per line
// in ring-index order ('#' comments and blank lines ignored).
func LoadPeerKeys(path string) ([]PublicKey, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("secure: load peer keys: %w", err)
	}
	defer f.Close()
	var keys []PublicKey
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, err := ParsePublicKey(line)
		if err != nil {
			return nil, fmt.Errorf("secure: peer key %d: %w", len(keys), err)
		}
		keys = append(keys, k)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("secure: load peer keys: %w", err)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("secure: load peer keys %s: no keys found", path)
	}
	return keys, nil
}

// WritePeerKeys writes a roster of public keys in the format read by
// LoadPeerKeys.
func WritePeerKeys(path string, keys []PublicKey) error {
	var b strings.Builder
	b.WriteString("# ringsec v1 peer public keys, one per ring index\n")
	for _, k := range keys {
		b.WriteString(k.String())
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
