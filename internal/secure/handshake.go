package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// The handshake is a fixed two-message IK-style pattern over X25519:
//
//	pre-message:  <- s            (initiator knows responder's static)
//	message 1:    -> e, es, s, ss (96 bytes)
//	message 2:    <- e, ee, se    (48 bytes)
//
// Each DH output is mixed into a running HKDF-SHA256 chaining key and
// every byte on the wire is absorbed into a transcript hash that
// authenticates the next AEAD operation, so a single flipped handshake
// bit fails the handshake. After message 2 the chaining key is split
// into one AES-256-GCM key per direction.

const (
	protocolName = "ringsec/1 X25519 HKDF-SHA256 AES-256-GCM"

	hsMsg1Len = KeySize + KeySize + Overhead + Overhead // e || enc(s) || tag
	hsMsg2Len = KeySize + Overhead                      // e || tag

	// DefaultHandshakeTimeout bounds the whole handshake when the
	// config does not set one; a peer that connects and stalls (or a
	// plaintext client that never speaks the pattern) is cut loose.
	DefaultHandshakeTimeout = 10 * time.Second
)

// HandshakeError is the typed failure for a handshake that did not
// complete: wrong peer key, truncated or garbled handshake message, a
// plaintext client talking to a key-configured listener, or a peer not
// on the allowlist. It is deliberately distinct from record-layer
// errors so callers can count downgrade/injection attempts separately.
type HandshakeError struct {
	Side   string // "client" or "server"
	Reason string
	Err    error // underlying I/O or crypto error, if any
}

func (e *HandshakeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("secure: %s handshake: %s: %v", e.Side, e.Reason, e.Err)
	}
	return fmt.Sprintf("secure: %s handshake: %s", e.Side, e.Reason)
}

func (e *HandshakeError) Unwrap() error { return e.Err }

func hsErr(side, reason string, err error) error {
	return &HandshakeError{Side: side, Reason: reason, Err: err}
}

// Config holds the knobs shared by both handshake sides.
type Config struct {
	// Identity is this side's static key. Required.
	Identity *PrivateKey
	// MaxRecord bounds the plaintext carried by one record in each
	// direction after the handshake; 0 means DefaultMaxRecord. The
	// receive side rejects sealed records larger than
	// MaxRecord+Overhead, so both peers must agree on the budget.
	MaxRecord int
	// HandshakeTimeout bounds the handshake round trip; 0 means
	// DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
}

// ClientConfig configures the initiator side.
type ClientConfig struct {
	Config
	// ServerKey is the responder's static public key. Required: the IK
	// pattern encrypts the very first message to it, so dialing a peer
	// holding a different key fails inside one round trip.
	ServerKey PublicKey
}

// ServerConfig configures the responder side.
type ServerConfig struct {
	Config
	// Allowed, when non-empty, restricts which client static keys may
	// complete the handshake. Empty means any key that completes the
	// pattern is accepted (it is still authenticated and fingerprinted).
	Allowed []PublicKey
}

// symmetric is the handshake's chaining-key + transcript-hash state.
type symmetric struct {
	ck [32]byte // chaining key
	h  [32]byte // transcript hash
	k  [32]byte // current handshake AEAD key
}

func newSymmetric() *symmetric {
	s := &symmetric{}
	s.h = sha256.Sum256([]byte(protocolName))
	s.ck = s.h
	return s
}

func (s *symmetric) mixHash(data []byte) {
	d := sha256.New()
	d.Write(s.h[:])
	d.Write(data)
	d.Sum(s.h[:0])
}

func (s *symmetric) mixKey(dh []byte) {
	prk := hkdfExtract(s.ck[:], dh)
	okm := hkdfExpand(prk, []byte("ringsec chain"), 64)
	copy(s.ck[:], okm[:32])
	copy(s.k[:], okm[32:])
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// seal encrypts plaintext under the current handshake key with a zero
// nonce (each mixKey installs a fresh key) and the transcript as AD,
// appends the ciphertext to dst, and absorbs it into the transcript.
func (s *symmetric) seal(dst, plaintext []byte) ([]byte, error) {
	aead, err := newAEAD(s.k[:])
	if err != nil {
		return nil, err
	}
	var nonce [12]byte
	start := len(dst)
	dst = aead.Seal(dst, nonce[:], plaintext, s.h[:])
	s.mixHash(dst[start:])
	return dst, nil
}

// open decrypts a handshake ciphertext sealed by the peer's matching
// seal call and absorbs it into the transcript.
func (s *symmetric) open(ct []byte) ([]byte, error) {
	aead, err := newAEAD(s.k[:])
	if err != nil {
		return nil, err
	}
	var nonce [12]byte
	pt, err := aead.Open(nil, nonce[:], ct, s.h[:])
	if err != nil {
		return nil, err
	}
	s.mixHash(ct)
	return pt, nil
}

// split derives the two directional record keys from the chaining key.
func (s *symmetric) split() (initiatorToResponder, responderToInitiator []byte) {
	okm := hkdfExpand(s.ck[:], []byte("ringsec split"), 64)
	return okm[:32], okm[32:]
}

func handshakeDeadline(conn net.Conn, d time.Duration) func() {
	if d == 0 {
		d = DefaultHandshakeTimeout
	}
	conn.SetDeadline(time.Now().Add(d))
	return func() { conn.SetDeadline(time.Time{}) }
}

// Client runs the initiator side of the handshake over conn and returns
// the encrypted connection. On error the caller owns closing conn.
func Client(conn net.Conn, cfg *ClientConfig) (*Conn, error) {
	if cfg == nil || cfg.Identity == nil {
		return nil, hsErr("client", "no identity key configured", nil)
	}
	if cfg.ServerKey.IsZero() {
		return nil, hsErr("client", "no server public key configured", nil)
	}
	clear := handshakeDeadline(conn, cfg.HandshakeTimeout)
	defer clear()

	sym := newSymmetric()
	sym.mixHash(cfg.ServerKey.Bytes()) // IK pre-message: responder static

	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, hsErr("client", "generate ephemeral", err)
	}
	msg1 := make([]byte, 0, hsMsg1Len)
	msg1 = append(msg1, eph.PublicKey().Bytes()...)
	sym.mixHash(eph.PublicKey().Bytes())

	es, err := eph.ECDH(cfg.ServerKey.key)
	if err != nil {
		return nil, hsErr("client", "es", err)
	}
	sym.mixKey(es)
	if msg1, err = sym.seal(msg1, cfg.Identity.Public().Bytes()); err != nil {
		return nil, hsErr("client", "seal static", err)
	}
	ss, err := cfg.Identity.key.ECDH(cfg.ServerKey.key)
	if err != nil {
		return nil, hsErr("client", "ss", err)
	}
	sym.mixKey(ss)
	if msg1, err = sym.seal(msg1, nil); err != nil {
		return nil, hsErr("client", "seal tag", err)
	}
	if _, err := conn.Write(msg1); err != nil {
		return nil, hsErr("client", "write message 1", err)
	}

	var msg2 [hsMsg2Len]byte
	if _, err := io.ReadFull(conn, msg2[:]); err != nil {
		return nil, hsErr("client", "read message 2", err)
	}
	ephR, err := ecdh.X25519().NewPublicKey(msg2[:KeySize])
	if err != nil {
		return nil, hsErr("client", "responder ephemeral", err)
	}
	sym.mixHash(msg2[:KeySize])
	ee, err := eph.ECDH(ephR)
	if err != nil {
		return nil, hsErr("client", "ee", err)
	}
	sym.mixKey(ee)
	se, err := cfg.Identity.key.ECDH(ephR)
	if err != nil {
		return nil, hsErr("client", "se", err)
	}
	sym.mixKey(se)
	if _, err := sym.open(msg2[KeySize:]); err != nil {
		// Authentication failed: wrong server key, or an attacker in
		// the middle. Same-shaped failure either way.
		return nil, hsErr("client", "server authentication failed", err)
	}

	sendKey, recvKey := sym.split()
	return newConn(conn, cfg.ServerKey, sendKey, recvKey, cfg.MaxRecord)
}

// Server runs the responder side of the handshake over conn and returns
// the encrypted connection. Any deviation from the pattern — truncated
// or garbled bytes, a plaintext protocol, an ineligible client key —
// yields a *HandshakeError; the caller owns closing conn.
func Server(conn net.Conn, cfg *ServerConfig) (*Conn, error) {
	if cfg == nil || cfg.Identity == nil {
		return nil, hsErr("server", "no identity key configured", nil)
	}
	clear := handshakeDeadline(conn, cfg.HandshakeTimeout)
	defer clear()

	sym := newSymmetric()
	sym.mixHash(cfg.Identity.Public().Bytes())

	var msg1 [hsMsg1Len]byte
	if _, err := io.ReadFull(conn, msg1[:]); err != nil {
		return nil, hsErr("server", "read message 1", err)
	}
	ephI, err := ecdh.X25519().NewPublicKey(msg1[:KeySize])
	if err != nil {
		return nil, hsErr("server", "initiator ephemeral", err)
	}
	sym.mixHash(msg1[:KeySize])
	es, err := cfg.Identity.key.ECDH(ephI)
	if err != nil {
		return nil, hsErr("server", "es", err)
	}
	sym.mixKey(es)
	staticEnc := msg1[KeySize : KeySize+KeySize+Overhead]
	staticRaw, err := sym.open(staticEnc)
	if err != nil {
		// A plaintext client (or garbage) lands here: the first flight
		// does not decrypt under our static key.
		return nil, hsErr("server", "client offered no valid handshake (plaintext or wrong key)", err)
	}
	clientPub, err := ecdh.X25519().NewPublicKey(staticRaw)
	if err != nil {
		return nil, hsErr("server", "client static", err)
	}
	var peer PublicKey
	peer.key = clientPub
	copy(peer.raw[:], staticRaw)

	ss, err := cfg.Identity.key.ECDH(clientPub)
	if err != nil {
		return nil, hsErr("server", "ss", err)
	}
	sym.mixKey(ss)
	if _, err := sym.open(msg1[KeySize+KeySize+Overhead:]); err != nil {
		return nil, hsErr("server", "client authentication failed", err)
	}
	if len(cfg.Allowed) > 0 {
		ok := false
		for _, a := range cfg.Allowed {
			if a.Equal(peer) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, hsErr("server", "client key "+peer.ShortFingerprint()+" not in allowlist", nil)
		}
	}

	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, hsErr("server", "generate ephemeral", err)
	}
	msg2 := make([]byte, 0, hsMsg2Len)
	msg2 = append(msg2, eph.PublicKey().Bytes()...)
	sym.mixHash(eph.PublicKey().Bytes())
	ee, err := eph.ECDH(ephI)
	if err != nil {
		return nil, hsErr("server", "ee", err)
	}
	sym.mixKey(ee)
	se, err := eph.ECDH(clientPub)
	if err != nil {
		return nil, hsErr("server", "se", err)
	}
	sym.mixKey(se)
	if msg2, err = sym.seal(msg2, nil); err != nil {
		return nil, hsErr("server", "seal tag", err)
	}
	if _, err := conn.Write(msg2); err != nil {
		return nil, hsErr("server", "write message 2", err)
	}

	i2r, r2i := sym.split()
	return newConn(conn, peer, r2i, i2r, cfg.MaxRecord)
}

// IsHandshakeError reports whether err is a handshake failure.
func IsHandshakeError(err error) bool {
	var he *HandshakeError
	return errors.As(err, &he)
}
