package secure

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// fixedKey derives a deterministic private key for fuzz harnesses so
// crashes reproduce byte-for-byte.
func fixedKey(t testing.TB, fill byte) *PrivateKey {
	raw := bytes.Repeat([]byte{fill}, KeySize)
	k, err := ParsePrivateKey(base64.RawURLEncoding.EncodeToString(raw))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// FuzzServerHandshake feeds arbitrary first-flight bytes to a
// key-configured responder: truncated handshakes, plaintext protocols
// aimed at an encrypted port, and bit-flipped handshake messages must
// all fail with a typed handshake error — never panic, never succeed.
func FuzzServerHandshake(f *testing.F) {
	serverKey := fixedKey(f, 0x42)

	// Plaintext RGV1 client aimed at an encrypted port.
	plaintext := make([]byte, hsMsg1Len)
	copy(plaintext, "RGV1\x01\x01\x00\x00\x00\x00\x00\x00\x00\x01")
	f.Add(plaintext)
	// Truncated handshake message.
	f.Add(plaintext[:17])
	f.Add([]byte{})
	// A structurally valid first flight with one flipped ciphertext
	// bit: captured live from a real initiator, then corrupted.
	c1, c2 := net.Pipe()
	clientKey := fixedKey(f, 0x77)
	go Client(c1, &ClientConfig{Config: Config{Identity: clientKey}, ServerKey: serverKey.Public()})
	capture := make([]byte, hsMsg1Len)
	if _, err := io.ReadFull(c2, capture); err == nil {
		capture[KeySize+3] ^= 0x40
		f.Add(capture)
	}
	c1.Close()
	c2.Close()

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			a.Write(data)
			a.Close()
		}()
		conn, err := Server(b, &ServerConfig{Config: Config{
			Identity:         serverKey,
			HandshakeTimeout: 2 * time.Second,
		}})
		if err == nil {
			conn.Close()
			t.Fatal("arbitrary bytes completed the handshake")
		}
		if !IsHandshakeError(err) {
			t.Fatalf("want *HandshakeError, got %T: %v", err, err)
		}
	})
}

// FuzzRecordStream feeds arbitrary sealed-record streams to an
// established connection's receive side: bit-flipped ciphertext,
// records sealed under a reused nonce, truncated records, and garbage
// must surface as clean errors with nothing delivered out of order.
func FuzzRecordStream(f *testing.F) {
	key := bytes.Repeat([]byte{0x5a}, 32)

	sealRecord := func(ctr uint64, plaintext []byte) []byte {
		aead, err := newAEAD(key)
		if err != nil {
			f.Fatal(err)
		}
		var n [12]byte
		nonce(&n, ctr)
		rec := make([]byte, recordHeaderLen, recordHeaderLen+len(plaintext)+Overhead)
		binary.BigEndian.PutUint32(rec, uint32(len(plaintext)+Overhead))
		return aead.Seal(rec, n[:], plaintext, nil)
	}

	valid := sealRecord(0, []byte("ELECT frame bytes"))
	f.Add(valid)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-2] ^= 0x08
	f.Add(flipped) // bit-flipped ciphertext
	// Reused nonce: two records both sealed as record 0 — the second
	// must fail the strict counter.
	f.Add(append(append([]byte(nil), valid...), sealRecord(0, []byte("replayed"))...))
	f.Add(valid[:len(valid)-3]) // truncated record
	oversize := make([]byte, recordHeaderLen)
	binary.BigEndian.PutUint32(oversize, uint32(maxRecordLimit))
	f.Add(oversize) // header announcing an over-budget record
	f.Add([]byte("not a record at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		conn, err := newConn(b, PublicKey{}, key, key, 0)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			a.Write(data)
			a.Close()
		}()
		// Drain until error or EOF; whatever comes out must be the
		// prefix of plaintexts sealed in strict order starting at 0.
		var got []byte
		buf := make([]byte, 256)
		for {
			n, err := conn.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				if IsTransportError(err) {
					// Poisoned conn must keep failing identically.
					if _, err2 := conn.Read(buf); !IsTransportError(err2) {
						t.Fatalf("transport error not sticky: %v", err2)
					}
				}
				break
			}
			if len(got) > maxRecordLimit {
				t.Fatal("runaway plaintext from fuzz input")
			}
		}
	})
}
