package baseline_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
)

func crFor(t *testing.T, r *ring.Ring) core.Protocol {
	t.Helper()
	p, err := baseline.NewCRProtocol(r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func petersonFor(t *testing.T, r *ring.Ring) core.Protocol {
	t.Helper()
	p, err := baseline.NewPetersonProtocol(r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConstructorValidation(t *testing.T) {
	if _, err := baseline.NewCRProtocol(0); err == nil {
		t.Error("CR with labelBits=0 must fail")
	}
	if _, err := baseline.NewPetersonProtocol(0); err == nil {
		t.Error("Peterson with labelBits=0 must fail")
	}
}

// minIndex returns the index holding the minimum label.
func minIndex(r *ring.Ring) int {
	best := 0
	for i := 1; i < r.N(); i++ {
		if r.Label(i) < r.Label(best) {
			best = i
		}
	}
	return best
}

func TestChangRobertsElectsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		r := ring.DistinctShuffled(n, rng)
		p := crFor(t, r)
		res, err := sim.RunSync(r, p, sim.Options{})
		if err != nil {
			t.Fatalf("CR on %s: %v", r, err)
		}
		want := minIndex(r)
		if res.LeaderIndex != want {
			t.Fatalf("CR on %s elected p%d, want min-label p%d", r, res.LeaderIndex, want)
		}
		// On a distinct-label ring the min-label process is the paper's
		// true leader.
		if tl, ok := r.TrueLeader(); !ok || tl != res.LeaderIndex {
			t.Fatalf("CR leader p%d is not the true leader p%d on %s", res.LeaderIndex, tl, r)
		}
	}
}

func TestChangRobertsWorstCaseMessages(t *testing.T) {
	// Ascending labels are the worst case for min-electing CR: the token
	// with value v only dies at the minimum, after n-v+1 hops — the classic
	// Θ(n²) case, but always within n(n+1)/2 + n.
	n := 24
	r := ring.Distinct(n)
	p := crFor(t, r)
	res, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	limit := n*(n+1)/2 + n
	if res.Messages > limit {
		t.Errorf("CR worst case: %d messages > %d", res.Messages, limit)
	}
	if res.Messages < n*n/4 {
		t.Errorf("CR on the adversarial ring used only %d messages — not the worst case?", res.Messages)
	}
}

func TestPetersonSpecAndMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		r := ring.DistinctShuffled(n, rng)
		p := petersonFor(t, r)
		res, err := sim.RunSync(r, p, sim.Options{})
		if err != nil {
			t.Fatalf("Peterson on %s: %v", r, err)
		}
		// Peterson '82: ≤ 2n per phase (a P1 and a P2 crossing every link),
		// ≤ ⌈log φ⌉+1 phases with φ the golden ratio — we use the loose
		// classic bound 2n·(log2 n + 2) plus the closing lap.
		limit := int(2*float64(n)*(math.Log2(float64(n))+2)) + n
		if res.Messages > limit {
			t.Errorf("Peterson on n=%d: %d messages > O(n log n) limit %d", n, res.Messages, limit)
		}
	}
}

func TestPetersonExhaustiveSmallPermutations(t *testing.T) {
	// All permutations of 1..n for n ≤ 6: the election must satisfy the
	// spec under every labeling order.
	var permute func(n int, labels []ring.Label, used []bool, fn func([]ring.Label))
	permute = func(n int, labels []ring.Label, used []bool, fn func([]ring.Label)) {
		if len(labels) == n {
			fn(labels)
			return
		}
		for v := 1; v <= n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			permute(n, append(labels, ring.Label(v)), used, fn)
			used[v] = false
		}
	}
	for n := 2; n <= 6; n++ {
		permute(n, nil, make([]bool, n+1), func(labels []ring.Label) {
			r := ring.MustNew(labels...)
			for _, p := range []core.Protocol{crFor(t, r), petersonFor(t, r)} {
				if _, err := sim.RunSync(r, p, sim.Options{}); err != nil {
					t.Fatalf("%s on %s: %v", p.Name(), r, err)
				}
			}
		})
	}
}

func TestBaselinesUnderAsynchrony(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		r := ring.DistinctShuffled(12, rng)
		for _, p := range []core.Protocol{crFor(t, r), petersonFor(t, r)} {
			want, err := sim.RunSync(r, p, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 5; seed++ {
				got, err := sim.RunAsync(r, p, sim.NewUniformDelay(seed, 0), sim.Options{})
				if err != nil {
					t.Fatalf("%s async on %s: %v", p.Name(), r, err)
				}
				if got.LeaderIndex != want.LeaderIndex || got.Messages != want.Messages {
					t.Fatalf("%s on %s: schedule changed the outcome", p.Name(), r)
				}
			}
		}
	}
}

func TestBaselineMachineErrors(t *testing.T) {
	r := ring.Distinct(3)
	cr := crFor(t, r).NewMachine(1)
	var out core.Outbox
	cr.Init(&out)
	out.Drain()
	if _, err := cr.Receive(core.PhaseShift(1), &out); err == nil {
		t.Error("CR must reject PHASE_SHIFT")
	}
	pet := petersonFor(t, r).NewMachine(1)
	pet.Init(&out)
	out.Drain()
	if _, err := pet.Receive(core.Token(2), &out); err == nil {
		t.Error("Peterson must reject bare tokens")
	}
	if _, err := pet.Receive(core.Message{Kind: core.KindPeterson2, Label: 2}, &out); err == nil {
		t.Error("Peterson active must reject P2 while awaiting P1")
	}
}

func TestBaselineTimeLinear(t *testing.T) {
	for _, n := range []int{8, 32, 128} {
		r := ring.Distinct(n)
		for _, p := range []core.Protocol{crFor(t, r), petersonFor(t, r)} {
			res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Both baselines complete within O(n) time units (CR ≤ 2n;
			// Peterson ≤ n per phase over ≤ log n + 1 phases, but phases
			// pipeline, keeping the span ≤ ~3n).
			if res.TimeUnits > float64(4*n) {
				t.Errorf("%s on n=%d: time %v > 4n", p.Name(), n, res.TimeUnits)
			}
		}
	}
}
