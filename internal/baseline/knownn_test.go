package baseline_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
)

func knownNFor(t *testing.T, r *ring.Ring) core.Protocol {
	t.Helper()
	p, err := baseline.NewKnownNProtocol(r.N(), r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKnownNValidation(t *testing.T) {
	if _, err := baseline.NewKnownNProtocol(1, 4); err == nil {
		t.Error("n=1 must fail")
	}
	if _, err := baseline.NewKnownNProtocol(3, 0); err == nil {
		t.Error("labelBits=0 must fail")
	}
}

func TestKnownNElectsTrueLeaderOnHomonymRings(t *testing.T) {
	// Unlike the K1 baselines, KnownN handles homonyms — it just needs n.
	rng := rand.New(rand.NewSource(19))
	rings := []*ring.Ring{ring.Ring122(), ring.Figure1(), ring.Distinct(9)}
	for i := 0; i < 20; i++ {
		n := 6 + i
		r, err := ring.RandomAsymmetric(rng, n, 3, max(8, n))
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, r := range rings {
		p := knownNFor(t, r)
		res, err := sim.RunSync(r, p, sim.Options{})
		if err != nil {
			t.Fatalf("KnownN on %s: %v", r, err)
		}
		want, _ := r.TrueLeader()
		if res.LeaderIndex != want {
			t.Fatalf("KnownN on %s elected p%d, true leader p%d", r, res.LeaderIndex, want)
		}
	}
}

func TestKnownNExactCost(t *testing.T) {
	// One lap of n tokens dying after n-1 hops plus the announcement lap:
	// exactly n(n-1) + n = n² messages and ≤ 2n time units.
	for _, n := range []int{2, 5, 16, 33} {
		r := ring.Distinct(n)
		p := knownNFor(t, r)
		res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != n*n {
			t.Errorf("n=%d: messages = %d, want n² = %d", n, res.Messages, n*n)
		}
		if res.TimeUnits > float64(2*n) {
			t.Errorf("n=%d: time %v > 2n", n, res.TimeUnits)
		}
	}
}

func TestKnownNExhaustiveSmall(t *testing.T) {
	for n := 2; n <= 6; n++ {
		ring.AllLabelings(n, 3, func(rr *ring.Ring) bool {
			if !rr.IsAsymmetric() {
				return true
			}
			r := ring.MustNew(rr.Labels()...)
			p := knownNFor(t, r)
			res, err := sim.RunSync(r, p, sim.Options{})
			if err != nil {
				t.Fatalf("KnownN on %s: %v", r, err)
			}
			if want, _ := r.TrueLeader(); res.LeaderIndex != want {
				t.Fatalf("KnownN on %s elected p%d, want p%d", r, res.LeaderIndex, want)
			}
			return true
		})
	}
}

func TestKnownNDetectsSymmetricRing(t *testing.T) {
	// On a symmetric ring no window is a Lyndon word: the execution
	// terminates with no leader, which the spec checker reports as a
	// bullet 1 violation — a *detected* impossibility rather than a hang.
	r := ring.MustNew(1, 2, 1, 2)
	p := knownNFor(t, r)
	_, err := sim.RunSync(r, p, sim.Options{})
	var v *spec.Violation
	if !errors.As(err, &v) || v.Bullet != 1 {
		t.Fatalf("err = %v, want bullet 1 (no leader)", err)
	}
}

func TestKnownNWrongSizeIsDetectablyWrong(t *testing.T) {
	// KnownN is only correct under its knowledge assumption. Feeding it a
	// wrong n makes several length-n' windows Lyndon words at once — on
	// this ring, claimed size 2 yields Lyndon windows at p0, p2 and p4 —
	// and the spec checker reports the duplicate leaders. This is the
	// knowledge-assumption mirror image of experiment E2.
	r := ring.MustNew(1, 2, 1, 2, 1, 3)
	p, err := baseline.NewKnownNProtocol(2, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunSync(r, p, sim.Options{MaxActions: 10000})
	var v *spec.Violation
	if !errors.As(err, &v) || v.Bullet != 1 {
		t.Fatalf("err = %v, want bullet 1 (duplicate leaders)", err)
	}
}

func TestKnownNAgreesAcrossSchedules(t *testing.T) {
	r := ring.Figure1()
	p := knownNFor(t, r)
	want, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		got, err := sim.RunAsync(r, p, sim.NewUniformDelay(seed, 0), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.LeaderIndex != want.LeaderIndex || got.Messages != want.Messages {
			t.Fatalf("seed %d changed the outcome", seed)
		}
	}
}
