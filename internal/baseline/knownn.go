package baseline

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/words"
)

// KnownNProtocol elects the true leader of any asymmetric ring when every
// process knows the exact ring size n — the knowledge assumption of the
// related work ([8], and [9]'s process-terminating variant) that the paper
// contrasts with knowing only the multiplicity bound k.
//
// With n known the full-information approach needs a single lap: every
// process launches its label, forwards what it receives while its
// collected string is shorter than n, and stops forwarding once the string
// is complete; a token therefore dies after exactly n-1 hops, and each
// process assembles LLabels(p)^n after receiving n-1 tokens. The process
// whose window is the Lyndon rotation elects itself and circulates
// ⟨FINISH, id⟩.
//
// Cost: time ≤ 2n, messages n(n-1) + n = n², space ≈ nb bits — against
// Ak's (2k+2)n time without any knowledge of n. Together with E9 this
// quantifies the paper's closing observation that knowing k (plus
// orientation) can be *more* useful than knowing n: KnownN is faster, but
// it is unusable when n is unknown, while Ak and Bk run on the same rings
// with no size information at all.
type KnownNProtocol struct {
	// N is the exact ring size, known a priori by every process.
	N int
	// LabelBits is b, for SpaceBits accounting.
	LabelBits int
}

// NewKnownNProtocol returns the known-n algorithm for rings of exactly n
// processes.
func NewKnownNProtocol(n, labelBits int) (*KnownNProtocol, error) {
	if n < 2 {
		return nil, fmt.Errorf("baseline: KnownN requires n >= 2, got %d", n)
	}
	if labelBits < 1 {
		return nil, fmt.Errorf("baseline: KnownN requires labelBits >= 1, got %d", labelBits)
	}
	return &KnownNProtocol{N: n, LabelBits: labelBits}, nil
}

// Name implements core.Protocol.
func (p *KnownNProtocol) Name() string { return fmt.Sprintf("KnownN(n=%d)", p.N) }

// NewMachine implements core.Protocol.
func (p *KnownNProtocol) NewMachine(id ring.Label) core.Machine {
	m := &knownNMachine{id: id, n: p.N, labelBits: p.LabelBits}
	return m
}

type knownNMachine struct {
	id        ring.Label
	n         int
	labelBits int

	str      []ring.Label // prefix of LLabels(p), up to length n
	booth    []int        // scratch for the Lyndon test; survives ResetFor
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool
}

// Init launches the process's own label (action N1).
func (m *knownNMachine) Init(out *core.Outbox) string {
	m.str = append(m.str, m.id)
	out.Send(core.Token(m.id))
	return "N1"
}

// decide runs once the window is complete: elect iff it is the Lyndon
// rotation.
func (m *knownNMachine) decide(out *core.Outbox) (string, error) {
	m.booth = words.LyndonScratch(m.booth, len(m.str))
	if words.IsLyndonInto(m.str, m.booth) {
		// N3: the window is minimal among rotations — p is the true leader.
		m.isLeader = true
		m.leader = m.id
		m.ledSet = true
		m.done = true
		out.Send(core.FinishLabel(m.id))
		return "N3", nil
	}
	// N4: somebody else's window is smaller; await the announcement.
	return "N4", nil
}

// Receive implements the single-lap collection rules.
func (m *knownNMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	if m.halted {
		return "", fmt.Errorf("KnownN: message %s delivered after halt", msg)
	}
	switch msg.Kind {
	case core.KindToken:
		if len(m.str) >= m.n {
			return "", fmt.Errorf("KnownN: token %s after the window completed — is the configured n too small?", msg)
		}
		m.str = append(m.str, msg.Label)
		if len(m.str) < m.n {
			// N2: window incomplete; keep the token moving.
			out.Send(core.Token(msg.Label))
			return "N2", nil
		}
		// Window complete: the token has traveled its n-1 hops and dies here.
		return m.decide(out)

	case core.KindFinishLabel:
		if m.isLeader {
			// N6: the announcement returned; halt.
			m.halted = true
			return "N6", nil
		}
		if len(m.str) < m.n {
			return "", fmt.Errorf("KnownN: FINISH overtook tokens (window %d/%d)", len(m.str), m.n)
		}
		// N5: learn the leader, relay, halt.
		m.leader = msg.Label
		m.ledSet = true
		m.done = true
		out.Send(core.FinishLabel(msg.Label))
		m.halted = true
		return "N5", nil

	default:
		return "", fmt.Errorf("KnownN: unexpected message %s", msg)
	}
}

// ResetFor implements core.Resetter: re-initialize in place, keeping the
// window's backing array (truncated to empty).
func (m *knownNMachine) ResetFor(p core.Protocol, _ int, id ring.Label) bool {
	kp, ok := p.(*KnownNProtocol)
	if !ok {
		return false
	}
	str := m.str[:0]
	*m = knownNMachine{id: id, n: kp.N, labelBits: kp.LabelBits, str: str, booth: m.booth}
	return true
}

// Clone implements core.Cloner.
func (m *knownNMachine) Clone() core.Machine {
	cp := *m
	cp.booth = nil // scratch: never shared between machines
	cp.str = make([]ring.Label, len(m.str))
	copy(cp.str, m.str)
	return &cp
}

// Halted implements core.Machine.
func (m *knownNMachine) Halted() bool { return m.halted }

// Status implements core.Machine.
func (m *knownNMachine) Status() core.Status {
	return core.Status{IsLeader: m.isLeader, Done: m.done, Leader: m.leader, LeaderSet: m.ledSet}
}

// StateName implements core.Machine.
func (m *knownNMachine) StateName() string {
	switch {
	case m.halted:
		return "HALT"
	case m.isLeader:
		return "LEADER"
	case len(m.str) >= m.n:
		return "WAIT"
	default:
		return "COLLECT"
	}
}

// SpaceBits implements core.Machine: the window (≤ n labels), id and
// leader labels, and three flag bits.
func (m *knownNMachine) SpaceBits() int {
	return len(m.str)*m.labelBits + 2*m.labelBits + 3
}

// Fingerprint implements core.Machine.
func (m *knownNMachine) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "KnownN halted=%t isLeader=%t done=%t str=", m.halted, m.isLeader, m.done)
	for i, l := range m.str {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(l.String())
	}
	return b.String()
}
