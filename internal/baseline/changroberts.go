// Package baseline implements classic leader-election algorithms for
// unidirectional rings with unique labels (the class K1): Chang–Roberts
// and Peterson's O(n log n) algorithm. They anchor the complexity sweeps at
// k = 1 and sanity-check the execution engines against well-understood
// algorithms.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
)

// CRProtocol is the Chang–Roberts algorithm (1979), minimum-label variant:
// every process launches its label; a process discards labels larger than
// its own and forwards smaller ones; the process whose label comes back
// around is the minimum and elects itself. On rings with distinct labels
// the minimum-label process is exactly the paper's true leader (its
// counter-clockwise label sequence is the Lyndon rotation).
//
// Worst-case message complexity Θ(n²) (labels sorted against the ring
// direction), average Θ(n log n); time ≤ 2n.
type CRProtocol struct {
	// LabelBits is b, for SpaceBits accounting.
	LabelBits int
}

// NewCRProtocol returns Chang–Roberts with the given label width.
func NewCRProtocol(labelBits int) (*CRProtocol, error) {
	if labelBits < 1 {
		return nil, fmt.Errorf("baseline: Chang-Roberts requires labelBits >= 1, got %d", labelBits)
	}
	return &CRProtocol{LabelBits: labelBits}, nil
}

// Name implements core.Protocol.
func (p *CRProtocol) Name() string { return "ChangRoberts" }

// NewMachine implements core.Protocol.
func (p *CRProtocol) NewMachine(id ring.Label) core.Machine {
	return &crMachine{id: id, labelBits: p.LabelBits}
}

type crMachine struct {
	id        ring.Label
	labelBits int

	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool
	relay    bool // saw a smaller label; cannot win
}

// Init launches the process's own label (action CR1).
func (m *crMachine) Init(out *core.Outbox) string {
	out.Send(core.Token(m.id))
	return "CR1"
}

// Receive implements the Chang–Roberts rules.
func (m *crMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	if m.halted {
		return "", fmt.Errorf("ChangRoberts: message %s delivered after halt", msg)
	}
	switch msg.Kind {
	case core.KindToken:
		x := msg.Label
		switch {
		case x == m.id:
			// CR4: own label returned — every other label was larger.
			m.isLeader = true
			m.leader = m.id
			m.ledSet = true
			m.done = true
			out.Send(core.FinishLabel(m.id))
			return "CR4", nil
		case x < m.id:
			// CR2: a smaller label passes through; p can no longer win.
			m.relay = true
			out.Send(core.Token(x))
			return "CR2", nil
		default:
			// CR3: discard a larger label.
			return "CR3", nil
		}
	case core.KindFinishLabel:
		if m.isLeader {
			// CR6: announcement returned; halt.
			m.halted = true
			return "CR6", nil
		}
		// CR5: learn the leader, relay, halt.
		m.leader = msg.Label
		m.ledSet = true
		m.done = true
		out.Send(core.FinishLabel(msg.Label))
		m.halted = true
		return "CR5", nil
	default:
		return "", fmt.Errorf("ChangRoberts: unexpected message %s", msg)
	}
}

// ResetFor implements core.Resetter: crMachine holds only value fields,
// so a reset is a plain re-initialization.
func (m *crMachine) ResetFor(p core.Protocol, _ int, id ring.Label) bool {
	cp, ok := p.(*CRProtocol)
	if !ok {
		return false
	}
	*m = crMachine{id: id, labelBits: cp.LabelBits}
	return true
}

// Clone implements core.Cloner: crMachine holds only value fields.
func (m *crMachine) Clone() core.Machine {
	cp := *m
	return &cp
}

// Halted implements core.Machine.
func (m *crMachine) Halted() bool { return m.halted }

// Status implements core.Machine.
func (m *crMachine) Status() core.Status {
	return core.Status{IsLeader: m.isLeader, Done: m.done, Leader: m.leader, LeaderSet: m.ledSet}
}

// StateName implements core.Machine.
func (m *crMachine) StateName() string {
	switch {
	case m.halted:
		return "HALT"
	case m.isLeader:
		return "LEADER"
	case m.relay:
		return "RELAY"
	default:
		return "CANDIDATE"
	}
}

// SpaceBits implements core.Machine: two labels (id, leader) plus four
// bits of flags.
func (m *crMachine) SpaceBits() int { return 2*m.labelBits + 4 }

// Fingerprint implements core.Machine.
func (m *crMachine) Fingerprint() string {
	return fmt.Sprintf("CR id=%s state=%s isLeader=%t done=%t", m.id, m.StateName(), m.isLeader, m.done)
}
