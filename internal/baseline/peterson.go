package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
)

// PetersonProtocol is Peterson's unidirectional leader-election algorithm
// (1982), minimum-value variant, with O(n log n) messages in the worst
// case. Active processes hold a temporary value (initially their label);
// in each phase an active process compares the values of its two nearest
// active counter-clockwise predecessors (relayed through passive
// processes) and survives iff its predecessor's value is a local minimum,
// adopting that value. At least half of the active processes die per
// phase; when a value travels the whole ring back to its holder, that
// process is the unique survivor and elects itself.
//
// Note: Peterson elects the process that *ends up holding* the globally
// minimal value — a spec-correct unique leader, though not necessarily the
// paper's Lyndon-word true leader.
type PetersonProtocol struct {
	// LabelBits is b, for SpaceBits accounting.
	LabelBits int
}

// NewPetersonProtocol returns Peterson's algorithm with the given label
// width.
func NewPetersonProtocol(labelBits int) (*PetersonProtocol, error) {
	if labelBits < 1 {
		return nil, fmt.Errorf("baseline: Peterson requires labelBits >= 1, got %d", labelBits)
	}
	return &PetersonProtocol{LabelBits: labelBits}, nil
}

// Name implements core.Protocol.
func (p *PetersonProtocol) Name() string { return "Peterson" }

// NewMachine implements core.Protocol.
func (p *PetersonProtocol) NewMachine(id ring.Label) core.Machine {
	return &petersonMachine{id: id, labelBits: p.LabelBits, tid: id}
}

type petersonMachine struct {
	id        ring.Label
	labelBits int

	tid   ring.Label // current temporary value (active processes)
	t1    ring.Label // first value received this phase
	await core.Kind  // KindPeterson1 or KindPeterson2: what an active process expects next
	relay bool       // passive: forwards everything

	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool
}

// Init starts phase 1 (action P1): send the temporary value.
func (m *petersonMachine) Init(out *core.Outbox) string {
	m.await = core.KindPeterson1
	out.Send(core.Message{Kind: core.KindPeterson1, Label: m.tid})
	return "P1"
}

// Receive implements Peterson's phase rules.
func (m *petersonMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	if m.halted {
		return "", fmt.Errorf("Peterson: message %s delivered after halt", msg)
	}
	switch msg.Kind {
	case core.KindPeterson1, core.KindPeterson2:
		if m.relay {
			// P6: passive processes relay candidate values.
			out.Send(msg)
			return "P6", nil
		}
		if msg.Kind != m.await {
			return "", fmt.Errorf("Peterson: active process expected %s, got %s", m.await, msg)
		}
		if msg.Kind == core.KindPeterson1 {
			if msg.Label == m.tid {
				// P4: own value completed a full circle — sole survivor.
				m.isLeader = true
				m.leader = m.id
				m.ledSet = true
				m.done = true
				out.Send(core.FinishLabel(m.id))
				return "P4", nil
			}
			// P2: remember the nearest active predecessor's value and
			// probe for the second-nearest.
			m.t1 = msg.Label
			m.await = core.KindPeterson2
			out.Send(core.Message{Kind: core.KindPeterson2, Label: m.t1})
			return "P2", nil
		}
		// KindPeterson2: end of phase.
		t2 := msg.Label
		if m.t1 < m.tid && m.t1 < t2 {
			// P3: predecessor's value is a local minimum — survive with it.
			m.tid = m.t1
			m.await = core.KindPeterson1
			out.Send(core.Message{Kind: core.KindPeterson1, Label: m.tid})
			return "P3", nil
		}
		// P5: not a local minimum — become a relay.
		m.relay = true
		return "P5", nil

	case core.KindFinishLabel:
		if m.isLeader {
			// P8: announcement returned; halt.
			m.halted = true
			return "P8", nil
		}
		// P7: learn the leader, relay, halt.
		m.leader = msg.Label
		m.ledSet = true
		m.done = true
		out.Send(core.FinishLabel(msg.Label))
		m.halted = true
		return "P7", nil

	default:
		return "", fmt.Errorf("Peterson: unexpected message %s", msg)
	}
}

// ResetFor implements core.Resetter: petersonMachine holds only value
// fields, so a reset is a plain re-initialization.
func (m *petersonMachine) ResetFor(p core.Protocol, _ int, id ring.Label) bool {
	pp, ok := p.(*PetersonProtocol)
	if !ok {
		return false
	}
	*m = petersonMachine{id: id, labelBits: pp.LabelBits, tid: id}
	return true
}

// Clone implements core.Cloner: petersonMachine holds only value fields.
func (m *petersonMachine) Clone() core.Machine {
	cp := *m
	return &cp
}

// Halted implements core.Machine.
func (m *petersonMachine) Halted() bool { return m.halted }

// Status implements core.Machine.
func (m *petersonMachine) Status() core.Status {
	return core.Status{IsLeader: m.isLeader, Done: m.done, Leader: m.leader, LeaderSet: m.ledSet}
}

// StateName implements core.Machine.
func (m *petersonMachine) StateName() string {
	switch {
	case m.halted:
		return "HALT"
	case m.isLeader:
		return "LEADER"
	case m.relay:
		return "RELAY"
	default:
		return "ACTIVE"
	}
}

// SpaceBits implements core.Machine: four labels (id, tid, t1, leader)
// plus five bits of flags and expectation state.
func (m *petersonMachine) SpaceBits() int { return 4*m.labelBits + 5 }

// Fingerprint implements core.Machine.
func (m *petersonMachine) Fingerprint() string {
	return fmt.Sprintf("Peterson id=%s tid=%s state=%s await=%s isLeader=%t done=%t",
		m.id, m.tid, m.StateName(), m.await, m.isLeader, m.done)
}
