// Package stats provides the tiny numeric helpers the experiment harness
// uses to compare measured complexity curves against the paper's bounds:
// summary statistics and least-squares fits of y = c·x over derived
// predictor variables (kn, k²n², …).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// FitProportional finds c minimizing Σ (y_i - c·x_i)² — the least-squares
// fit of y = c·x. It returns c and the coefficient of determination R²
// (1 when the fit is exact). Used to check growth shapes: a measurement
// series that is Θ(kn) fits y = c·(kn) with R² near 1.
func FitProportional(xs, ys []float64) (c, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: need equal-length non-empty series, got %d and %d", len(xs), len(ys))
	}
	var sxy, sxx float64
	for i := range xs {
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("stats: all-zero predictor")
	}
	c = sxy / sxx
	meanY := Mean(ys)
	var ssRes, ssTot float64
	for i := range xs {
		d := ys[i] - c*xs[i]
		ssRes += d * d
		t := ys[i] - meanY
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return c, 1, nil
		}
		return c, 0, nil
	}
	return c, 1 - ssRes/ssTot, nil
}

// RatioBounds returns the min and max of y_i/x_i, skipping zero
// predictors. Used to verify "measured ≤ bound" uniformly: max ratio ≤ 1
// means every measurement is within its bound.
func RatioBounds(xs, ys []float64) (lo, hi float64, err error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: need equal-length non-empty series")
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	any := false
	for i := range xs {
		if xs[i] == 0 {
			continue
		}
		any = true
		r := ys[i] / xs[i]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if !any {
		return 0, 0, fmt.Errorf("stats: all-zero predictors")
	}
	return lo, hi, nil
}
