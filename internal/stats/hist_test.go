package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank percentile the histogram promises on
// small populations: the ⌈q·n⌉-th smallest sample.
func exactQuantile(xs []float64, q float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestHistogramBadBounds(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty boundaries must be rejected")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing boundaries must be rejected")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("decreasing boundaries must be rejected")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := MustHistogram(DefaultLatencyBuckets)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram: count=%d sum=%v", h.Count(), h.Sum())
	}
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Error("quantile/mean of empty histogram must be NaN")
	}
}

// TestHistogramExactSmallN pins the satellite requirement: for populations
// that fit in the retained-sample window, every quantile is exactly the
// nearest-rank percentile, regardless of how the values fall into buckets.
func TestHistogramExactSmallN(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(1000)
		xs := make([]float64, n)
		h := MustHistogram(DefaultLatencyBuckets)
		for i := range xs {
			// Heavy-tailed values spanning several buckets plus outliers
			// beyond the last boundary.
			xs[i] = math.Exp(rng.NormFloat64()*3 - 7)
			h.Observe(xs[i])
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			want := exactQuantile(xs, q)
			got := h.Quantile(q)
			if got != want {
				t.Fatalf("trial %d n=%d q=%v: got %v, want exact %v", trial, n, q, got, want)
			}
		}
	}
}

// TestHistogramBucketEstimateLargeN drives the histogram past the retained
// window and checks the interpolated estimate lands in the right bucket
// and within bucket-width error of the true quantile.
func TestHistogramBucketEstimateLargeN(t *testing.T) {
	h := MustHistogram([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
	rng := rand.New(rand.NewSource(7))
	n := exactCap * 3
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64()) // uniform on [0, 1)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.1 { // one bucket width
			t.Errorf("uniform q=%v: got %v, want within one bucket", q, got)
		}
	}
	// Quantiles must be monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramOverflowClamped checks values beyond the last boundary are
// estimated inside [min, max] rather than extrapolated to infinity.
func TestHistogramOverflowClamped(t *testing.T) {
	h := MustHistogram([]float64{1})
	for i := 0; i < exactCap+100; i++ {
		h.Observe(5) // everything in the overflow bucket
	}
	if got := h.Quantile(0.99); got != 5 {
		t.Errorf("overflow-only q99 = %v, want clamped to max 5", got)
	}
	if got := h.Quantile(0.01); got != 5 {
		t.Errorf("overflow-only q01 = %v, want clamped to min 5", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := MustHistogram([]float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 1.7, 2.5, 9} {
		h.Observe(v)
	}
	var uppers []float64
	var cums []int64
	h.Buckets(func(u float64, c int64) {
		uppers = append(uppers, u)
		cums = append(cums, c)
	})
	wantU := []float64{1, 2, 3}
	wantC := []int64{1, 3, 4}
	for i := range wantU {
		if uppers[i] != wantU[i] || cums[i] != wantC[i] {
			t.Fatalf("bucket %d: (%v, %d), want (%v, %d)", i, uppers[i], cums[i], wantU[i], wantC[i])
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5 (the implicit +Inf bucket)", h.Count())
	}
	if h.Sum() != 0.5+1.5+1.7+2.5+9 {
		t.Errorf("sum = %v", h.Sum())
	}
	if math.Abs(h.Mean()-(0.5+1.5+1.7+2.5+9)/5) > 1e-12 {
		t.Errorf("mean = %v", h.Mean())
	}
}
