package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestMergeEmpty: folding an empty histogram in is a no-op, and folding
// into an empty histogram copies the argument exactly.
func TestMergeEmpty(t *testing.T) {
	a := MustHistogram(DefaultLatencyBuckets)
	b := MustHistogram(DefaultLatencyBuckets)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 0 || a.Sum() != 0 || !math.IsNaN(a.Quantile(0.5)) {
		t.Errorf("empty+empty: count=%d sum=%v", a.Count(), a.Sum())
	}

	for _, v := range []float64{0.001, 0.04, 2} {
		b.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || a.Sum() != b.Sum() {
		t.Errorf("empty+full: count=%d sum=%v, want %d %v", a.Count(), a.Sum(), b.Count(), b.Sum())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("empty+full q=%v: %v != %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
	// The argument must not be modified.
	if b.Count() != 3 {
		t.Errorf("merge mutated its argument: count=%d", b.Count())
	}
}

// approxEqual compares sums whose floating-point addition order differs
// (per-shard accumulation vs one stream).
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestMergeBoundsMismatch: merging histograms with different ladders is
// an error, not silent corruption.
func TestMergeBoundsMismatch(t *testing.T) {
	a := MustHistogram([]float64{1, 2, 3})
	if err := a.Merge(MustHistogram([]float64{1, 2})); err == nil {
		t.Error("different boundary counts must be rejected")
	}
	if err := a.Merge(MustHistogram([]float64{1, 2, 4})); err == nil {
		t.Error("different boundary values must be rejected")
	}
}

// TestMergePartialEquivalence is the satellite contract: splitting a
// sample stream across k histograms and merging must match feeding the
// whole stream to one histogram — counts, sum, min/max, every bucket,
// and (while the merged population fits the exact window) every quantile.
func TestMergePartialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, parts := range []int{2, 3, 8} {
		n := 200 + rng.Intn(800)
		xs := make([]float64, n)
		whole := MustHistogram(DefaultLatencyBuckets)
		shards := make([]*Histogram, parts)
		for i := range shards {
			shards[i] = MustHistogram(DefaultLatencyBuckets)
		}
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64()*3 - 7)
			whole.Observe(xs[i])
			shards[i%parts].Observe(xs[i])
		}
		merged := MustHistogram(DefaultLatencyBuckets)
		for _, sh := range shards {
			if err := merged.Merge(sh); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Count() != whole.Count() || !approxEqual(merged.Sum(), whole.Sum()) {
			t.Fatalf("parts=%d: count/sum %d/%v, want %d/%v", parts, merged.Count(), merged.Sum(), whole.Count(), whole.Sum())
		}
		wantBuckets := map[float64]int64{}
		whole.Buckets(func(u float64, c int64) { wantBuckets[u] = c })
		merged.Buckets(func(u float64, c int64) {
			if wantBuckets[u] != c {
				t.Errorf("parts=%d bucket le=%v: %d, want %d", parts, u, c, wantBuckets[u])
			}
		})
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			want := exactQuantile(xs, q)
			if got := merged.Quantile(q); got != want {
				t.Errorf("parts=%d q=%v: merged %v, want exact %v", parts, q, got, want)
			}
		}
	}
}

// TestMergeFullWindow drives the merged population past the exact-sample
// window: the merge must degrade to the bucket estimate (like a single
// overflowing histogram), never panic or mis-count, and min/max must
// still fold exactly.
func TestMergeFullWindow(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	rng := rand.New(rand.NewSource(3))
	merged := MustHistogram(bounds)
	var n int64
	lo, hi := math.Inf(1), math.Inf(-1)
	for part := 0; part < 3; part++ {
		h := MustHistogram(bounds)
		for i := 0; i < exactCap; i++ { // 3×exactCap total: overflows the window
			v := rng.Float64()
			h.Observe(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			n++
		}
		if err := merged.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != n {
		t.Fatalf("count = %d, want %d", merged.Count(), n)
	}
	if merged.min != lo || merged.max != hi {
		t.Errorf("min/max = %v/%v, want %v/%v", merged.min, merged.max, lo, hi)
	}
	if len(merged.exact) != exactCap {
		t.Errorf("exact window holds %d samples, want clamped at %d", len(merged.exact), exactCap)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := merged.Quantile(q); math.Abs(got-q) > 0.1 { // one bucket width
			t.Errorf("uniform q=%v: got %v, want within one bucket", q, got)
		}
	}
	if q0, q1 := merged.Quantile(0), merged.Quantile(1); q0 < lo || q1 > hi {
		t.Errorf("quantile range [%v, %v] escapes observed [%v, %v]", q0, q1, lo, hi)
	}
}

// TestStripedMatchesHistogram: a striped recorder fed a stream serially
// must snapshot to the same aggregate a plain histogram produces.
func TestStripedMatchesHistogram(t *testing.T) {
	s := MustStriped(4, DefaultLatencyBuckets)
	if s.Stripes() != 4 {
		t.Fatalf("stripes = %d, want 4", s.Stripes())
	}
	whole := MustHistogram(DefaultLatencyBuckets)
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*3 - 7)
		s.Observe(xs[i])
		whole.Observe(xs[i])
	}
	snap := s.Snapshot()
	if snap.Count() != whole.Count() || !approxEqual(snap.Sum(), whole.Sum()) {
		t.Fatalf("snapshot count/sum %d/%v, want %d/%v", snap.Count(), snap.Sum(), whole.Count(), whole.Sum())
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		want := exactQuantile(xs, q)
		if got := snap.Quantile(q); got != want {
			t.Errorf("q=%v: %v, want exact %v", q, got, want)
		}
	}
	if s.Count() != 1000 {
		t.Errorf("striped count = %d, want 1000", s.Count())
	}
}

// TestStripedRounding pins the sizing policy: requests round up to a
// power of two, and non-positive requests pick a machine-scaled default.
func TestStripedRounding(t *testing.T) {
	for _, c := range []struct{ req, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}} {
		if got := MustStriped(c.req, DefaultLatencyBuckets).Stripes(); got != c.want {
			t.Errorf("stripes(%d) = %d, want %d", c.req, got, c.want)
		}
	}
	auto := MustStriped(0, DefaultLatencyBuckets).Stripes()
	if auto < 1 || auto > 64 || auto&(auto-1) != 0 {
		t.Errorf("auto stripes = %d, want a power of two in [1, 64]", auto)
	}
	if _, err := NewStriped(2, nil); err == nil {
		t.Error("bad bounds must propagate out of NewStriped")
	}
}

// TestStripedConcurrent is the -race stress for the striped recorder:
// concurrent writers racing scrapes must never lose an observation or
// trip the race detector, and interleaved snapshots must be monotone.
func TestStripedConcurrent(t *testing.T) {
	s := MustStriped(8, DefaultLatencyBuckets)
	const (
		writers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() { // a concurrent scraper, like /metrics under load
		defer close(scrapeDone)
		prev := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Snapshot()
			if snap.Count() < prev {
				t.Errorf("snapshot count went backwards: %d after %d", snap.Count(), prev)
				return
			}
			prev = snap.Count()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				s.Observe(rng.Float64() / 100)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scrapeDone
	if got := s.Count(); got != writers*perW {
		t.Errorf("count = %d, want %d (no lost observations)", got, writers*perW)
	}
	if snap := s.Snapshot(); snap.Count() != writers*perW {
		t.Errorf("final snapshot count = %d, want %d", snap.Count(), writers*perW)
	}
}
