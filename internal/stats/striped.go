package stats

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Striped is a concurrency-friendly latency recorder: a power-of-two
// number of stripes, each an independently locked Histogram, with
// merge-on-scrape reads (Histogram.Merge). Writers spread round-robin
// across the stripes, so under load each Observe contends on a 1/Nth
// slice of the lock traffic a single shared histogram would see — the
// ringd request path records latency through one of these instead of a
// registry-wide mutex. Reads (Snapshot and everything built on it) are
// proportionally more expensive, which is the right trade for a metric
// written per-request and read per-scrape.
type Striped struct {
	stripes []stripe
	mask    uint64
	next    atomic.Uint64 // round-robin stripe cursor
}

// stripe pads each histogram+lock pair to its own cache line so that
// lock traffic on one stripe does not false-share with its neighbors.
type stripe struct {
	mu sync.Mutex
	h  *Histogram
	_  [40]byte
}

// NewStriped builds a striped recorder over the given bucket boundaries.
// stripes is rounded up to a power of two; stripes <= 0 picks a default
// scaled to GOMAXPROCS (capped at 64).
func NewStriped(stripes int, bounds []float64) (*Striped, error) {
	if stripes <= 0 {
		stripes = runtime.GOMAXPROCS(0)
		if stripes > 64 {
			stripes = 64
		}
	}
	if stripes > 1 {
		stripes = 1 << bits.Len(uint(stripes-1))
	}
	s := &Striped{stripes: make([]stripe, stripes), mask: uint64(stripes - 1)}
	for i := range s.stripes {
		h, err := NewHistogram(bounds)
		if err != nil {
			return nil, err
		}
		s.stripes[i].h = h
	}
	return s, nil
}

// MustStriped is NewStriped, panicking on error. For fixed literal
// boundary ladders like DefaultLatencyBuckets.
func MustStriped(stripes int, bounds []float64) *Striped {
	s, err := NewStriped(stripes, bounds)
	if err != nil {
		panic(err)
	}
	return s
}

// Observe records one measurement into the next stripe in round-robin
// order. One atomic add plus one uncontended (in expectation) mutex —
// no shared lock.
func (s *Striped) Observe(v float64) {
	st := &s.stripes[s.next.Add(1)&s.mask]
	st.mu.Lock()
	st.h.Observe(v)
	st.mu.Unlock()
}

// Count returns the total number of observations across all stripes.
func (s *Striped) Count() int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.h.Count()
		st.mu.Unlock()
	}
	return n
}

// Snapshot merges every stripe into one fresh Histogram — the
// merge-on-scrape read path. The snapshot is consistent per stripe but
// not across stripes (observations racing a scrape may or may not be
// included), which is the usual monitoring contract.
func (s *Striped) Snapshot() *Histogram {
	out := MustHistogram(s.stripes[0].h.bounds)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		err := out.Merge(st.h)
		st.mu.Unlock()
		if err != nil {
			// Unreachable: every stripe was built from the same bounds.
			panic(err)
		}
	}
	return out
}

// Stripes reports the stripe count (for tests and sizing diagnostics).
func (s *Striped) Stripes() int { return len(s.stripes) }
