package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a streaming histogram over non-negative measurements with
// fixed bucket boundaries, shared by the ringd /metrics latency histograms
// and the ringload latency report. It keeps the first few thousand raw
// samples so that quantiles over small populations (a 1k-request load run,
// a freshly started server) are exact; once the retained window overflows
// it falls back to linear interpolation inside the matching bucket —
// the usual Prometheus-style estimate, bounded by the observed min/max.
//
// Histogram is not safe for concurrent use; callers that share one across
// goroutines (e.g. the serve metrics registry) must hold their own lock.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []int64   // len(bounds)+1; counts[len(bounds)] is the overflow bucket
	sum    float64
	n      int64
	min    float64
	max    float64
	exact  []float64 // first exactCap raw samples, unsorted
}

// exactCap is the number of raw samples retained for the exact-quantile
// path. 4096 comfortably covers a ringload run of the default size, after
// which the bucket estimate takes over.
const exactCap = 4096

// DefaultLatencyBuckets is a log-spaced boundary ladder (seconds) suited
// to HTTP request latencies from tens of microseconds to tens of seconds.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram with the given upper bucket boundaries,
// which must be non-empty and strictly increasing.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket boundary")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: bucket boundaries must increase strictly, got %v then %v", bounds[i-1], bounds[i])
		}
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{
		bounds: cp,
		counts: make([]int64, len(cp)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}, nil
}

// MustHistogram is NewHistogram, panicking on error. For fixed literal
// boundary ladders like DefaultLatencyBuckets.
func MustHistogram(bounds []float64) *Histogram {
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one measurement.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.exact) < exactCap {
		h.exact = append(h.exact, v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of all observations (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observations. While
// every sample is still retained it computes the exact nearest-rank
// percentile: the ⌈q·n⌉-th smallest sample. Beyond that it interpolates
// linearly inside the bucket containing that rank, clamped to the observed
// [min, max]. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if int64(len(h.exact)) == h.n {
		sorted := make([]float64, len(h.exact))
		copy(sorted, h.exact)
		sort.Float64s(sorted)
		return sorted[rank-1]
	}
	var cum int64
	for i, c := range h.counts {
		if cum+c < rank {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo < h.min {
			lo = h.min
		}
		if hi < lo {
			hi = lo
		}
		frac := float64(rank-cum) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.max // unreachable: ranks are ≤ n
}

// Merge folds o into h. Both histograms must have identical bucket
// boundaries. Bucket counts, sum, count, and min/max add up exactly; the
// retained raw-sample window is concatenated up to its capacity, so a
// merged histogram whose combined population still fits the window keeps
// exact quantiles, and one that overflows falls back to the bucket
// estimate — the same degradation a single histogram has. The argument is
// not modified. This is the merge-on-scrape primitive behind the striped
// recorder: stripes are cheap to write and merged only when read.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("stats: merging histograms with %d and %d bucket boundaries", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("stats: merging histograms with different boundaries at index %d: %v vs %v", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
	h.n += o.n
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	if room := exactCap - len(h.exact); room > 0 {
		take := o.exact
		if len(take) > room {
			take = take[:room]
		}
		h.exact = append(h.exact, take...)
	}
	return nil
}

// Buckets calls fn for each boundary in ascending order with the
// cumulative count of observations ≤ that boundary — the `le` series of
// the Prometheus histogram exposition. The implicit +Inf bucket is
// Count().
func (h *Histogram) Buckets(fn func(upper float64, cumulative int64)) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fn(b, cum)
	}
}
