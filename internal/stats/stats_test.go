package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummaries(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("Max/Min of empty must be ∓Inf")
	}
}

func TestFitProportionalExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 6, 9, 12}
	c, r2, err := FitProportional(xs, ys)
	if err != nil || !almost(c, 3) || !almost(r2, 1) {
		t.Errorf("fit = %v, %v, %v; want 3, 1, nil", c, r2, err)
	}
}

func TestFitProportionalNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	c, r2, err := FitProportional(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1.9 || c > 2.1 {
		t.Errorf("c = %v, want ≈2", c)
	}
	if r2 < 0.99 {
		t.Errorf("R² = %v, want near 1", r2)
	}
}

func TestFitProportionalErrors(t *testing.T) {
	if _, _, err := FitProportional(nil, nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, _, err := FitProportional([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, _, err := FitProportional([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero predictor must fail")
	}
}

func TestFitProportionalConstantSeries(t *testing.T) {
	// ssTot == 0: ys all equal. Exact fit when y = c·x is achievable.
	c, r2, err := FitProportional([]float64{2, 2}, []float64{4, 4})
	if err != nil || !almost(c, 2) || !almost(r2, 1) {
		t.Errorf("constant exact: %v %v %v", c, r2, err)
	}
	_, r2, err = FitProportional([]float64{1, 2}, []float64{4, 4})
	if err != nil || r2 != 0 {
		t.Errorf("constant non-exact: r2 = %v, want 0", r2)
	}
}

// TestFitResidualOptimality: the returned c minimizes the sum of squared
// residuals — no perturbation improves it.
func TestFitResidualOptimality(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v%16) + 1
			ys[i] = float64(v) * 0.7
		}
		c, _, err := FitProportional(xs, ys)
		if err != nil {
			return false
		}
		sse := func(k float64) float64 {
			s := 0.0
			for i := range xs {
				d := ys[i] - k*xs[i]
				s += d * d
			}
			return s
		}
		base := sse(c)
		return sse(c+0.01) >= base-1e-9 && sse(c-0.01) >= base-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioBounds(t *testing.T) {
	lo, hi, err := RatioBounds([]float64{2, 4, 0}, []float64{1, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lo, 0.5) || !almost(hi, 2) {
		t.Errorf("RatioBounds = %v, %v; want 0.5, 2 (zero predictor skipped)", lo, hi)
	}
	if _, _, err := RatioBounds([]float64{0}, []float64{1}); err == nil {
		t.Error("all-zero predictors must fail")
	}
	if _, _, err := RatioBounds(nil, nil); err == nil {
		t.Error("empty must fail")
	}
}
