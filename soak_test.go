package repro_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/boundedn"
	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/ring"
	"repro/internal/sim"
)

// TestSoak is the randomized end-to-end campaign: many random rings from
// A ∩ Kk, every algorithm, several schedulers and both engines, with the
// specification checked on every run and all outcomes cross-compared.
// It is the in-tree version of cmd/ringfuzz (which adds exhaustive
// exploration and longer campaigns).
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260705))
	trials := 40
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(28)
		k := 2 + rng.Intn(3)
		r, err := ring.RandomAsymmetric(rng, n, k, max(6, n))
		if err != nil {
			t.Fatal(err)
		}
		trueLeader, _ := r.TrueLeader()
		b := r.LabelBits()

		protos := make([]core.Protocol, 0, 4)
		if p, err := core.NewAProtocol(k, b); err == nil {
			protos = append(protos, p)
		}
		if p, err := core.NewStarProtocol(k, b); err == nil {
			protos = append(protos, p)
		}
		if p, err := core.NewBProtocol(k, b); err == nil {
			protos = append(protos, p)
		}
		if p, err := baseline.NewKnownNProtocol(n, b); err == nil {
			protos = append(protos, p)
		}

		for _, p := range protos {
			p := p
			t.Run(fmt.Sprintf("trial%d/%s", trial, p.Name()), func(t *testing.T) {
				ref, err := sim.RunSync(r, p, sim.Options{})
				if err != nil {
					t.Fatalf("sync on %s: %v", r, err)
				}
				if ref.LeaderIndex != trueLeader {
					t.Fatalf("elected p%d on %s, true leader p%d", ref.LeaderIndex, r, trueLeader)
				}
				for _, d := range []sim.DelayModel{
					sim.ConstantDelay(1),
					sim.NewUniformDelay(rng.Int63(), 0),
					sim.SlowLinkDelay{SlowFrom: rng.Intn(n), Fast: 0.02},
				} {
					res, err := sim.RunAsync(r, p, d, sim.Options{})
					if err != nil {
						t.Fatalf("async on %s: %v", r, err)
					}
					if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages {
						t.Fatalf("schedule changed the outcome on %s", r)
					}
				}
				if trial%8 == 0 {
					res, err := gorun.Run(r, p, time.Minute)
					if err != nil {
						t.Fatalf("gorun on %s: %v", r, err)
					}
					if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages {
						t.Fatalf("goroutine engine disagrees on %s", r)
					}
				}
			})
		}

		// The bounded-n decision protocol must match ground truth on the
		// same rings under random valid bounds.
		m := 2 + rng.Intn(n-1)
		M := n + rng.Intn(n)
		want, err := boundedn.Expected(r, m, M)
		if err != nil {
			t.Fatal(err)
		}
		res, err := boundedn.Run(r, m, M)
		if err != nil {
			t.Fatalf("boundedn on %s [%d,%d]: %v", r, m, M, err)
		}
		if res.Verdict != want {
			t.Fatalf("boundedn verdict %s on %s [%d,%d], ground truth %s", res.Verdict, r, m, M, want)
		}
	}
}
