package repro_test

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro"
)

// kernelCorpus is the golden ring corpus the equivalence soak runs every
// registry algorithm against: the paper's Figure 1 ring and rotations, a
// unique-label ring, homonym rings of several multiplicities, a symmetric
// ring (only Itai–Rodeh elects; everyone else must fail identically), and
// deterministic random A ∩ K3 rings including the n=16 miss benchmark ring.
func kernelCorpus(t *testing.T) []*repro.Ring {
	t.Helper()
	rings := []*repro.Ring{
		repro.Figure1Ring(),
		repro.MustParseRing("3 1 3 2 2 1 2 1"), // Figure 1, rotated
		repro.MustParseRing("4 2 5 1 3"),       // unique labels
		repro.MustParseRing("1 2 2"),
		repro.MustParseRing("1 1 1 2"),
		repro.MustParseRing("1 2 1 2"), // symmetric
		repro.MustParseRing("2 2"),     // symmetric, minimal
	}
	for _, seed := range []int64{1, 2, 7} {
		r, err := repro.RandomRing(seed, 16, 3, 8)
		if err != nil {
			t.Fatalf("RandomRing(%d): %v", seed, err)
		}
		rings = append(rings, r)
	}
	return rings
}

// TestElectIntoEquivalence is the kernel's mandatory equivalence soak:
// every registry algorithm crossed with the golden ring corpus, run through
// both Elect and ElectInto, requiring byte-identical Outcomes (leader,
// label, time, messages, bits, space) and identical error text on invalid
// combinations. One scratch serves the whole soak, so protocol caching,
// machine pooling, and arena reuse across algorithms and ring sizes are all
// exercised.
func TestElectIntoEquivalence(t *testing.T) {
	sc := repro.NewElectScratch()
	const k = 3
	for _, alg := range repro.Algorithms() {
		for _, r := range kernelCorpus(t) {
			want, wantErr := repro.Elect(r, alg, k)
			var got repro.Outcome
			gotErr := repro.ElectInto(r, alg, k, sc, &got)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s on %s: Elect err = %v, ElectInto err = %v", alg, r, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Errorf("%s on %s: error text diverged:\nElect:     %v\nElectInto: %v", alg, r, wantErr, gotErr)
				}
				continue
			}
			if *want != got {
				t.Errorf("%s on %s: outcomes diverged:\nElect:     %+v\nElectInto: %+v", alg, r, *want, got)
			}
		}
	}
}

// TestElectIntoRepeatability pins that a reused scratch is not stateful
// across elections: re-running one (ring, algorithm) pair many times yields
// the first outcome every time — in particular the randomized engine's
// seeded determinism survives machine pooling.
func TestElectIntoRepeatability(t *testing.T) {
	sc := repro.NewElectScratch()
	fig1 := repro.Figure1Ring()
	uniq := repro.MustParseRing("4 2 5 1 3")
	for _, alg := range repro.Algorithms() {
		r := fig1
		if alg == repro.AlgorithmChangRoberts || alg == repro.AlgorithmPeterson {
			r = uniq // the unique-label baselines reject homonym rings
		}
		var first repro.Outcome
		if err := repro.ElectInto(r, alg, 3, sc, &first); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for i := 0; i < 10; i++ {
			var again repro.Outcome
			if err := repro.ElectInto(r, alg, 3, sc, &again); err != nil {
				t.Fatalf("%s run %d: %v", alg, i, err)
			}
			if again != first {
				t.Fatalf("%s run %d: outcome drifted:\nfirst: %+v\nnow:   %+v", alg, i, first, again)
			}
		}
	}
}

// TestRingSeedMatchesReference pins the inlined FNV-1a seed derivation to
// the hash/fnv reference it replaced: same bytes in, same seed out, for
// every corpus ring. The seed feeds the Itai–Rodeh PRNG streams, so a
// drifted constant would silently change every randomized execution.
func TestRingSeedMatchesReference(t *testing.T) {
	for _, r := range kernelCorpus(t) {
		labels := r.LabelsView()
		n := len(labels)
		rot := 0
		best := append([]repro.Label(nil), labels...)
		for cand := 1; cand < n; cand++ {
			for i := 0; i < n; i++ {
				a, b := labels[(cand+i)%n], best[i]
				if a < b {
					rot = cand
					for j := 0; j < n; j++ {
						best[j] = labels[(cand+j)%n]
					}
					break
				} else if a > b {
					break
				}
			}
		}
		h := fnv.New64a()
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(n))
		h.Write(b[:])
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(b[:], uint64(int64(labels[(rot+i)%n])))
			h.Write(b[:])
		}
		if got, want := repro.RingSeed(r), h.Sum64(); got != want {
			t.Errorf("RingSeed(%s) = %#x, want reference FNV-1a %#x", r, got, want)
		}
	}
}

// TestElectIntoSteadyStateAllocs pins the kernel's headline property: a
// warmed per-worker scratch executes whole elections — class check, seed
// derivation, protocol resolution, simulation, outcome — with zero heap
// allocations.
func TestElectIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted under -race")
	}
	r, err := repro.RandomRing(1, 16, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range repro.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			sc := repro.NewElectScratch()
			var out repro.Outcome
			if err := repro.ElectInto(r, alg, 3, sc, &out); err != nil {
				t.Skipf("%s does not elect on the benchmark ring: %v", alg, err)
			}
			for i := 0; i < 3; i++ {
				if err := repro.ElectInto(r, alg, 3, sc, &out); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := repro.ElectInto(r, alg, 3, sc, &out); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("ElectInto allocates %.1f/op after warm-up, want 0", allocs)
			}
		})
	}
}
