package repro_test

import (
	"fmt"

	repro "repro"
)

// Elect the leader of the paper's Figure 1 ring with algorithm Bk.
func ExampleElect() {
	r := repro.MustParseRing("1 3 1 3 2 2 1 2")
	out, err := repro.Elect(r, repro.AlgorithmB, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leader p%d (label %s), %d messages, %d bits/process\n",
		out.Leader, out.LeaderLabel, out.Messages, out.PeakSpaceBits)
	// Output:
	// leader p0 (label 1), 276 messages, 15 bits/process
}

// The true leader is the process whose counter-clockwise label sequence is
// a Lyndon word.
func ExampleTrueLeader() {
	r := repro.MustParseRing("3 1 2")
	leader, ok := repro.TrueLeader(r)
	fmt.Println(leader, ok)

	sym := repro.MustParseRing("1 2 1 2")
	_, ok = repro.TrueLeader(sym)
	fmt.Println(ok)
	// Output:
	// 1 true
	// false
}

// Symmetric rings and rings outside Kk are rejected before any messages
// flow.
func ExampleProtocolFor() {
	_, err := repro.ProtocolFor(repro.MustParseRing("1 2 1 2"), repro.AlgorithmA, 2)
	fmt.Println(err)
	// Output:
	// repro: ring [1 2 1 2] is symmetric; leader election is unsolvable on it
}
