# Reproduction of "Leader Election in Asymmetric Labeled Unidirectional
# Rings" (Altisen et al., IPPS 2017). Standard library only; Go >= 1.22.

GO ?= go

.PHONY: all build vet test test-race test-short bench experiments \
        experiments-md fuzz figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment table (E1..E13).
experiments:
	$(GO) run ./cmd/ringbench

experiments-md:
	$(GO) run ./cmd/ringbench -format md

# Randomized + exhaustive robustness campaign.
fuzz:
	$(GO) run ./cmd/ringfuzz -trials 500

# The paper's figures: text + SVG Figure 1, DOT Figure 2.
figures:
	$(GO) run ./cmd/ringviz -figure1
	$(GO) run ./cmd/ringviz -figure1 -svg > figure1.svg
	$(GO) run ./cmd/ringviz -dot > figure2.dot

clean:
	rm -f figure1.svg figure2.dot test_output.txt bench_output.txt
