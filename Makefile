# Reproduction of "Leader Election in Asymmetric Labeled Unidirectional
# Rings" (Altisen et al., IPPS 2017). Standard library only; Go >= 1.22.

GO ?= go

.PHONY: all build check vet fmt-check test test-net test-serve test-wire \
        test-cluster test-chaos test-secure test-rand test-kernel test-race race-concurrency test-short bench \
        bench-serve bench-wire bench-cluster bench-miss bench-secure bench-json bench-compare \
        profile-serve experiments experiments-md fuzz fuzz-parse fuzz-wire fuzz-secure \
        figures clean

all: build check test

build:
	$(GO) build ./...

# Static checks plus the TCP transport engine's race/fault soak, the
# election-serving daemon's race/shed/drain soak, the binary wire
# protocol's pipelining/drain soak, the cluster gateway's routing/
# failover/replica-kill soak, the crash-recovery chaos soak, and the
# miss-path kernel's equivalence soak, plus the hardened-transport
# suite, wired into the default flow.
check: vet fmt-check test-net test-serve test-wire test-cluster test-chaos test-secure test-rand test-kernel

vet:
	$(GO) vet ./...

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt required for:"; echo "$$files"; exit 1; \
	fi

test:
	$(GO) test ./...

# The TCP transport engine under the race detector, plus a short soak of
# the fault-injection and reconnect paths (repeated runs shake out timing
# races in backoff/reconnect that a single pass can miss).
test-net:
	$(GO) test -race -count=1 ./internal/netring/... ./cmd/ringnode/...
	$(GO) test -race -count=3 -run 'Fault|Backoff|Unreachable|Violation' ./internal/netring/

# The serving stack (daemon, cache, admission, load generator) under the
# race detector, plus short soaks of the shed and graceful-drain paths —
# the two places where a timing race turns into a hung client — and of the
# sharded cache's waiter-vs-eviction and abandon/retry races.
test-serve:
	$(GO) test -race -count=1 ./internal/serve/... ./internal/load/... ./internal/stats/... ./cmd/ringd/... ./cmd/ringload/...
	$(GO) test -race -count=3 -run 'Shed|Drain|Singleflight|CloseDrains' ./internal/serve/
	$(GO) test -race -count=3 -run 'Evict|Waiter|Shard|Abandoned' ./internal/serve/

# The RGV1 binary wire protocol under the race detector: pipelined
# out-of-order completion, typed shedding, and the graceful-drain
# half-close (flush, FIN, linger) are exactly the paths where a timing
# race becomes a truncated frame, so they get a repeated soak.
test-wire:
	$(GO) test -race -count=3 -run 'Wire' ./internal/serve/ ./cmd/ringd/ ./cmd/ringload/

# The cluster subsystem under the race detector: rendezvous routing,
# health hysteresis, failover, hedging, the gateway daemon, the
# in-process scaling ladder, and the replica-kill soak — real ringd
# subprocesses SIGKILLed behind the gateway while a crosschecking load
# mix keeps flowing.
test-cluster:
	$(GO) test -race -count=1 ./internal/cluster/ ./cmd/ringgw/
	$(GO) test -race -count=1 -run 'Cluster' ./internal/load/ ./cmd/ringload/
	$(GO) test -race -count=1 -timeout 10m -run 'Replica' ./internal/chaos/

# Crash-recovery chaos soak: real ringnode processes over TCP, a
# seed-driven fault scheduler (SIGKILL + relaunch, partitions, delay
# spikes), every run cross-checked against the deterministic simulator.
# The race detector rides along; -chaos.seeds widens the sweep.
test-chaos:
	$(GO) test -race -count=1 -timeout 20m ./internal/chaos/ -chaos.seeds=20
	$(GO) test -race -count=1 ./cmd/ringchaos/

# The hardened transport under the race detector: the ringsec
# handshake/record layer itself, then every layer that threads it —
# sealed ring links, the secure serve port (downgrade, replay, unknown
# client, per-peer rate limits), the keyed cluster fleet, the encrypted
# 8-process ring, and the daemons' -keyfile paths — and finally the
# adversarial chaos schedules (ciphertext garbage, replay, truncation,
# mid-handshake cuts against real encrypted ringnode processes).
test-secure:
	$(GO) test -race -count=1 ./internal/secure/
	$(GO) test -race -count=1 -run 'Secure|Sealed|RateLimit|Replay|Downgrade' \
		./internal/netring/ ./internal/serve/ ./internal/cluster/ \
		./cmd/ringnode/ ./cmd/ringd/ ./cmd/ringgw/ ./cmd/ringload/
	$(GO) test -race -count=1 -timeout 20m -run 'Adversary' ./internal/chaos/

# The randomized election engine: the seeded ensemble (200 seeds of
# deterministic replay, draw statistics, rotation equivariance) plus a
# -race soak of the three-way simulator/goroutine/TCP agreement — the
# exact place where a scheduler-dependent PRNG stream would surface as a
# cross-engine message-count mismatch.
test-rand:
	$(GO) test -count=1 ./internal/rand/
	$(GO) test -race -count=3 -run 'ThreeWay|Ensemble|CrashRecovery' ./internal/rand/
	$(GO) test -race -count=1 -run 'Rand|Symmetric' ./internal/serve/ ./internal/cluster/

# The allocation-free miss-path kernel: the sim-layer scratch equivalence
# suite (Into runs vs legacy runs, trace streams included), the root-level
# ElectInto equivalence soak over the golden ring corpus for every registry
# algorithm, and the serving layer's concurrent-miss soak under the race
# detector.
test-kernel:
	$(GO) test -count=1 -run 'Scratch' ./internal/sim/
	$(GO) test -count=1 -run 'ElectInto|RingSeed' .
	$(GO) test -count=1 -run 'MissPath' ./internal/serve/
	$(GO) test -race -count=1 -run 'MissPath|ServeMissConcurrentSoak' ./internal/serve/

test-race:
	$(GO) test -race ./...

# Focused race check of the concurrency-bearing packages: the sweep
# worker pool, the parallel schedule explorer, and the goroutine engine.
race-concurrency:
	$(GO) test -race ./internal/sweep/... ./internal/sim/... ./internal/gorun/...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The serving hot-path micro-benchmarks (cache hit, legacy global-mutex
# hit, cache-churn miss, singleflight). -cpu 8 exercises the sharded
# cache under the contention it exists for, even on smaller machines.
# The pattern excludes the ServeMissKernel/ServeMissLegacy pair, which
# has its own section (bench-miss) and runs single-threaded.
bench-serve:
	$(GO) test -run '^$$' -bench 'Serve(Hit|Miss$$|Singleflight)' -benchmem -cpu 8 -count 1 ./internal/serve/

# The miss-path before/after pair: one cold election through the
# per-worker scratch-arena kernel against the same election through the
# legacy allocating path. The committed baseline requires the kernel to
# hold >=3x fewer allocs/op and >=1.5x ns/op.
bench-miss:
	$(GO) test -run '^$$' -bench 'ServeMiss(Kernel|Legacy)' -benchmem -count 1 ./internal/serve/

# The wire-vs-HTTP A/B pair: one cached hit through the RGV1 binary
# protocol against the same hit through HTTP/JSON. The committed
# baseline requires wire to stay >=5x faster with 0 allocs/op.
bench-wire:
	$(GO) test -run '^$$' -bench 'WireHit|HTTPHit' -benchmem -cpu 8 -count 1 ./internal/serve/

# The replica-scaling ladder: routed election throughput at fleet sizes
# 1, 2, and 4. Deliberately NO -cpu override — the ladder must record
# the machine's true GOMAXPROCS, because benchdiff's -cluster-scale
# check trusts the report's gomaxprocs to decide whether a flat ladder
# is a regression or just a narrow host.
bench-cluster:
	$(GO) test -run '^$$' -bench 'ClusterElect' -benchmem -count 1 ./internal/cluster/

# The encryption A/B pair: one cached election round trip over loopback
# TCP, plaintext versus ringsec. The committed baseline requires secure
# to stay <=3x the plaintext ns/op.
bench-secure:
	$(GO) test -run '^$$' -bench 'WireElect(Plain|Secure)' -benchmem -count 1 ./internal/serve/

# Machine-readable experiment benchmark (same schema as BENCH_PR9.json),
# with the serving, wire, cluster, and miss-path benchmarks merged into
# its serve_bench, wire_bench, cluster_bench, and miss_bench sections.
bench-json:
	$(GO) run ./cmd/ringbench -json BENCH_NEW.json > /dev/null
	$(GO) test -run '^$$' -bench 'Serve(Hit|Miss$$|Singleflight)' -benchmem -cpu 8 -count 1 ./internal/serve/ \
		| $(GO) run ./cmd/benchdiff -merge-serve BENCH_NEW.json
	$(GO) test -run '^$$' -bench 'WireHit|HTTPHit' -benchmem -cpu 8 -count 1 ./internal/serve/ \
		| $(GO) run ./cmd/benchdiff -merge-wire BENCH_NEW.json
	$(GO) test -run '^$$' -bench 'ClusterElect' -benchmem -count 1 ./internal/cluster/ \
		| $(GO) run ./cmd/benchdiff -merge-cluster BENCH_NEW.json
	$(GO) test -run '^$$' -bench 'ServeMiss(Kernel|Legacy)' -benchmem -count 1 ./internal/serve/ \
		| $(GO) run ./cmd/benchdiff -merge-miss BENCH_NEW.json
	$(GO) test -run '^$$' -bench 'WireElect(Plain|Secure)' -benchmem -count 1 ./internal/serve/ \
		| $(GO) run ./cmd/benchdiff -merge-secure BENCH_NEW.json

# Diff a fresh benchmark report against the committed baseline:
# wall-clock deltas are informational; content drift, serve/wire/cluster/
# miss/secure ns/op regressions past tolerance, allocs/op increases, a
# wire hit slipping below 5x the HTTP hit, a miss kernel slipping below
# 3x fewer allocs or 1.5x the legacy path's speed, an encrypted round
# trip above 3x its plaintext equivalent, and (on multi-core hosts) a
# replica ladder that stopped scaling fail the target.
bench-compare: bench-json
	$(GO) run ./cmd/benchdiff BENCH_PR10.json BENCH_NEW.json

# Capture CPU and heap profiles of ringd under ringload traffic.
# Artifacts land in ./profiles/ for `go tool pprof`.
profile-serve:
	@mkdir -p profiles
	$(GO) build -o profiles/ringd ./cmd/ringd
	$(GO) build -o profiles/ringload ./cmd/ringload
	@profiles/ringd -listen 127.0.0.1:8322 -pprof 127.0.0.1:6060 & \
	RINGD_PID=$$!; \
	sleep 0.5; \
	( curl -s -o profiles/cpu.pb.gz 'http://127.0.0.1:6060/debug/pprof/profile?seconds=8' & \
	  CURL_PID=$$!; \
	  profiles/ringload -url http://127.0.0.1:8322 -n 20000 -workers 16 > profiles/ringload.json; \
	  wait $$CURL_PID ); \
	curl -s -o profiles/heap.pb.gz 'http://127.0.0.1:6060/debug/pprof/heap'; \
	kill $$RINGD_PID; \
	echo "profiles/cpu.pb.gz, profiles/heap.pb.gz, profiles/ringload.json"

# Regenerate every experiment table (E1..E14).
experiments:
	$(GO) run ./cmd/ringbench

experiments-md:
	$(GO) run ./cmd/ringbench -format md

# Randomized + exhaustive robustness campaign.
fuzz:
	$(GO) run ./cmd/ringfuzz -trials 500

# Coverage-guided fuzzing of the untrusted ring-spec parser (seed corpus
# under internal/ring/testdata/fuzz/).
fuzz-parse:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ring/

# Coverage-guided fuzzing of the RGV1 wire-frame decoders (seed corpus
# under internal/serve/testdata/fuzz/).
fuzz-wire:
	$(GO) test -fuzz=FuzzWireRequest -fuzztime=30s ./internal/serve/

# Coverage-guided fuzzing of the encrypted transport's untrusted
# surfaces: the ringsec handshake and record layer (seed corpus under
# internal/secure/testdata/fuzz/), the sealed ring-link stream, and the
# secure wire port's pre-authentication surface.
fuzz-secure:
	$(GO) test -fuzz=FuzzServerHandshake -fuzztime=30s ./internal/secure/
	$(GO) test -fuzz=FuzzRecordStream -fuzztime=30s ./internal/secure/
	$(GO) test -fuzz=FuzzSealedStream -fuzztime=30s ./internal/netring/
	$(GO) test -fuzz=FuzzWireSecureHandshake -fuzztime=30s ./internal/serve/

# The paper's figures: text + SVG Figure 1, DOT Figure 2.
figures:
	$(GO) run ./cmd/ringviz -figure1
	$(GO) run ./cmd/ringviz -figure1 -svg > figure1.svg
	$(GO) run ./cmd/ringviz -dot > figure2.dot

clean:
	rm -f figure1.svg figure2.dot test_output.txt bench_output.txt BENCH_NEW.json
	rm -rf profiles
