# Reproduction of "Leader Election in Asymmetric Labeled Unidirectional
# Rings" (Altisen et al., IPPS 2017). Standard library only; Go >= 1.22.

GO ?= go

.PHONY: all build check vet fmt-check test test-race race-concurrency \
        test-short bench bench-json bench-compare experiments \
        experiments-md fuzz figures clean

all: build check test

build:
	$(GO) build ./...

# Static checks wired into the default flow: vet plus gofmt drift.
check: vet fmt-check

vet:
	$(GO) vet ./...

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt required for:"; echo "$$files"; exit 1; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Focused race check of the concurrency-bearing packages: the sweep
# worker pool, the parallel schedule explorer, and the goroutine engine.
race-concurrency:
	$(GO) test -race ./internal/sweep/... ./internal/sim/... ./internal/gorun/...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable experiment benchmark (same schema as BENCH_PR1.json).
bench-json:
	$(GO) run ./cmd/ringbench -json BENCH_NEW.json > /dev/null

# Diff a fresh benchmark report against the committed baseline:
# wall-clock deltas are informational, content drift fails the target.
bench-compare: bench-json
	$(GO) run ./cmd/benchdiff BENCH_PR1.json BENCH_NEW.json

# Regenerate every experiment table (E1..E13).
experiments:
	$(GO) run ./cmd/ringbench

experiments-md:
	$(GO) run ./cmd/ringbench -format md

# Randomized + exhaustive robustness campaign.
fuzz:
	$(GO) run ./cmd/ringfuzz -trials 500

# The paper's figures: text + SVG Figure 1, DOT Figure 2.
figures:
	$(GO) run ./cmd/ringviz -figure1
	$(GO) run ./cmd/ringviz -figure1 -svg > figure1.svg
	$(GO) run ./cmd/ringviz -dot > figure2.dot

clean:
	rm -f figure1.svg figure2.dot test_output.txt bench_output.txt BENCH_NEW.json
