// Command ringfuzz stress-tests the reproduction: it draws random rings
// from A ∩ Kk, runs every registered algorithm that accepts the ring
// under randomized and adversarial schedules (plus the goroutine engine),
// checks the full election specification and cross-engine agreement —
// leader, message count, and payload-bit total — on each run, and
// exhaustively model-checks all schedules of small rings. Each trial also
// runs the randomized Itai–Rodeh engine on a SYMMETRIC ring of the same
// size, where every deterministic algorithm is provably stuck. Any
// violation is reported with the reproducing seed.
//
// Usage:
//
//	ringfuzz                 # 100 random trials + small-ring exploration
//	ringfuzz -trials 10000   # longer campaign
//	ringfuzz -seed 7 -maxn 48 -maxk 5
//	ringfuzz -engine tcp     # also cross-check the TCP transport engine
//
// With -engine tcp, sampled trials on small rings additionally run over
// real loopback sockets (internal/netring), occasionally with an injected
// transient link drop, and must still agree with the synchronous
// reference. The extra runs draw nothing from the campaign rng, so a seed
// reproduces the same rings and schedules under either engine setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"

	repro "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trials  = fs.Int("trials", 100, "number of random ring trials")
		seed    = fs.Int64("seed", time.Now().UnixNano(), "base seed (printed for reproduction)")
		maxN    = fs.Int("maxn", 32, "largest ring size")
		maxK    = fs.Int("maxk", 4, "largest multiplicity bound")
		explore = fs.Bool("explore", true, "also exhaustively model-check all schedules of small rings")
		engine  = fs.String("engine", "mem", "mem (in-memory engines only) or tcp (also cross-check loopback TCP on small rings)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *engine != "mem" && *engine != "tcp" {
		fmt.Fprintf(stderr, "ringfuzz: unknown engine %q (want mem or tcp)\n", *engine)
		return 2
	}
	fmt.Fprintf(stdout, "ringfuzz: seed=%d trials=%d maxn=%d maxk=%d\n", *seed, *trials, *maxN, *maxK)

	failures := 0
	report := func(format string, a ...any) {
		failures++
		fmt.Fprintf(stderr, "FAIL: "+format+"\n", a...)
	}

	rng := rand.New(rand.NewSource(*seed))
	for trial := 0; trial < *trials; trial++ {
		fuzzOneTrial(trial, rng, *maxN, *maxK, *engine == "tcp", report)
		if trial%25 == 24 {
			fmt.Fprintf(stdout, "  %d/%d trials done\n", trial+1, *trials)
		}
	}

	if *explore {
		fmt.Fprintln(stdout, "exhaustive schedule exploration on small rings…")
		exploreSmallRings(stdout, report)
	}

	if failures > 0 {
		fmt.Fprintf(stderr, "ringfuzz: %d failure(s); reproduce with -seed %d\n", failures, *seed)
		return 1
	}
	fmt.Fprintln(stdout, "ringfuzz: all runs satisfied the specification and agreed across engines.")
	return 0
}

// fuzzOneTrial draws one random ring and cross-checks every algorithm
// under several schedules against the synchronous reference run. With tcp
// set, sampled small rings also run over loopback sockets; those runs draw
// nothing from rng so seeds stay reproducible across engine settings.
func fuzzOneTrial(trial int, rng *rand.Rand, maxN, maxK int, tcp bool, report func(string, ...any)) {
	n := 4 + rng.Intn(maxN-3)
	k := 2 + rng.Intn(maxK-1)
	r, err := ring.RandomAsymmetric(rng, n, k, max(6, n))
	if err != nil {
		report("trial %d: generator: %v", trial, err)
		return
	}
	trueLeader, ok := r.TrueLeader()
	if !ok {
		report("trial %d: generator produced symmetric ring %s", trial, r)
		return
	}
	// Every registered algorithm that accepts this ring joins the trial —
	// CR and Peterson only when the draw happens to have unique labels,
	// ItaiRodeh always. New registry entries are fuzzed with no change
	// here.
	var protos []core.Protocol
	var randomized []bool
	for _, alg := range repro.Algorithms() {
		if p, err := repro.ProtocolFor(r, alg, k); err == nil {
			protos = append(protos, p)
			randomized = append(randomized, alg == repro.AlgorithmItaiRodeh)
		}
	}
	// The Bk run doubles as an Observation 1 conformance check: its traced
	// unit-delay execution must keep every message within its phase.
	if pb, err := repro.ProtocolFor(r, repro.AlgorithmB, k); err == nil {
		mem := &trace.Mem{}
		if _, err := sim.RunAsync(r, pb, sim.ConstantDelay(1), sim.Options{Sink: mem}); err == nil {
			if err := trace.CheckPhaseAlignment(mem.Events, n); err != nil {
				report("trial %d: %s on %s: %v", trial, pb.Name(), r, err)
			}
		}
	}
	// And each trial exercises the randomized engine where no deterministic
	// algorithm can follow: a symmetric ring of the same size class.
	fuzzSymmetric(trial, rng, n, tcp, report)
	for pi, p := range protos {
		ref, err := sim.RunSync(r, p, sim.Options{})
		if err != nil {
			report("trial %d: %s on %s: sync: %v", trial, p.Name(), r, err)
			continue
		}
		if !randomized[pi] && ref.LeaderIndex != trueLeader {
			report("trial %d: %s on %s elected p%d, true leader p%d", trial, p.Name(), r, ref.LeaderIndex, trueLeader)
			continue
		}
		if randomized[pi] && (ref.LeaderIndex < 0 || ref.LeaderIndex >= n) {
			report("trial %d: %s on %s elected out-of-range p%d", trial, p.Name(), r, ref.LeaderIndex)
			continue
		}
		schedules := []struct {
			name  string
			delay sim.DelayModel
		}{
			{"unit", sim.ConstantDelay(1)},
			{"random", sim.NewUniformDelay(rng.Int63(), 0)},
			{"slow-link", sim.SlowLinkDelay{SlowFrom: rng.Intn(n), Fast: 0.01}},
		}
		for _, s := range schedules {
			res, err := sim.RunAsync(r, p, s.delay, sim.Options{})
			if err != nil {
				report("trial %d: %s on %s (%s): %v", trial, p.Name(), r, s.name, err)
				continue
			}
			if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages || res.TotalBits != ref.TotalBits {
				report("trial %d: %s on %s (%s): p%d/%d msgs/%d bits vs sync p%d/%d/%d",
					trial, p.Name(), r, s.name, res.LeaderIndex, res.Messages, res.TotalBits, ref.LeaderIndex, ref.Messages, ref.TotalBits)
			}
		}
		if trial%10 == 0 { // the goroutine engine is slower; sample it
			res, err := gorun.Run(r, p, time.Minute)
			if err != nil {
				report("trial %d: %s on %s (goroutines): %v", trial, p.Name(), r, err)
			} else if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages || res.TotalBits != ref.TotalBits {
				report("trial %d: %s on %s (goroutines): p%d/%d msgs/%d bits vs sync p%d/%d/%d",
					trial, p.Name(), r, res.LeaderIndex, res.Messages, res.TotalBits, ref.LeaderIndex, ref.Messages, ref.TotalBits)
			}
		}
		if tcp && n <= 12 && trial%5 == 0 { // real sockets are slowest; small rings, sampled
			opts := netring.Options{Timeout: time.Minute}
			engineName := "tcp"
			if trial%10 == 5 { // every other sampled trial severs one link mid-election
				opts.Faults = netring.Faults{trial % n: {DropAfter: 2}}
				engineName = "tcp+drop"
			}
			res, err := netring.RunLocal(r, p, opts)
			if err != nil {
				report("trial %d: %s on %s (%s): %v", trial, p.Name(), r, engineName, err)
			} else if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages || res.TotalBits != ref.TotalBits {
				report("trial %d: %s on %s (%s): p%d/%d msgs/%d bits vs sync p%d/%d/%d",
					trial, p.Name(), r, engineName, res.LeaderIndex, res.Messages, res.TotalBits, ref.LeaderIndex, ref.Messages, ref.TotalBits)
			}
		}
	}
}

// fuzzSymmetric builds a symmetric ring of size n (a short random pattern
// repeated) and cross-checks the randomized engine on it: the simulator
// under three schedules must agree exactly — leader, messages, bits — and
// sampled trials also run the goroutine and TCP engines. Deterministic
// protocols cannot even start here (ProtocolFor rejects the ring), so
// this path is the randomized engine's alone.
func fuzzSymmetric(trial int, rng *rand.Rand, n int, tcp bool, report func(string, ...any)) {
	// Pick a proper divisor d of n and repeat a d-label pattern n/d times:
	// the ring is invariant under rotation by d, hence symmetric.
	var divs []int
	for d := 1; d < n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	d := divs[rng.Intn(len(divs))]
	labels := make([]ring.Label, n)
	for i := 0; i < d; i++ {
		labels[i] = ring.Label(1 + rng.Intn(4))
	}
	for i := d; i < n; i++ {
		labels[i] = labels[i%d]
	}
	r, err := ring.New(labels)
	if err != nil {
		report("trial %d: symmetric generator: %v", trial, err)
		return
	}
	p, err := repro.ProtocolFor(r, repro.AlgorithmItaiRodeh, 0)
	if err != nil {
		report("trial %d: ItaiRodeh on symmetric %s: %v", trial, r, err)
		return
	}
	ref, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		report("trial %d: ItaiRodeh on symmetric %s: sync: %v", trial, r, err)
		return
	}
	if ref.LeaderIndex < 0 || ref.LeaderIndex >= n {
		report("trial %d: ItaiRodeh on symmetric %s elected out-of-range p%d", trial, r, ref.LeaderIndex)
		return
	}
	for _, delay := range []sim.DelayModel{sim.ConstantDelay(1), sim.NewUniformDelay(rng.Int63(), 0)} {
		res, err := sim.RunAsync(r, p, delay, sim.Options{})
		if err != nil {
			report("trial %d: ItaiRodeh on symmetric %s: %v", trial, r, err)
			continue
		}
		if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages || res.TotalBits != ref.TotalBits {
			report("trial %d: ItaiRodeh on symmetric %s: p%d/%d msgs/%d bits vs sync p%d/%d/%d",
				trial, r, res.LeaderIndex, res.Messages, res.TotalBits, ref.LeaderIndex, ref.Messages, ref.TotalBits)
		}
	}
	if trial%10 == 0 {
		if res, err := gorun.Run(r, p, time.Minute); err != nil {
			report("trial %d: ItaiRodeh on symmetric %s (goroutines): %v", trial, r, err)
		} else if res.LeaderIndex != ref.LeaderIndex || res.TotalBits != ref.TotalBits {
			report("trial %d: ItaiRodeh on symmetric %s (goroutines): p%d/%d bits vs sync p%d/%d",
				trial, r, res.LeaderIndex, res.TotalBits, ref.LeaderIndex, ref.TotalBits)
		}
	}
	if tcp && n <= 12 && trial%5 == 0 {
		if res, err := netring.RunLocal(r, p, netring.Options{Timeout: time.Minute}); err != nil {
			report("trial %d: ItaiRodeh on symmetric %s (tcp): %v", trial, r, err)
		} else if res.LeaderIndex != ref.LeaderIndex || res.TotalBits != ref.TotalBits {
			report("trial %d: ItaiRodeh on symmetric %s (tcp): p%d/%d bits vs sync p%d/%d",
				trial, r, res.LeaderIndex, res.TotalBits, ref.LeaderIndex, ref.TotalBits)
		}
	}
}

// exploreSmallRings exhaustively model-checks the schedule space of the
// canonical small rings. Symmetric specs (e.g. "1 1", "1 2 1 2") reach
// only the randomized engine; asymmetric ones run the deterministic
// algorithms too.
func exploreSmallRings(stdout io.Writer, report func(string, ...any)) {
	for _, spec := range []string{"1 2", "1 2 2", "2 1 3", "1 1 2 2", "2 1 2 1 3", "1 2 3 4 5", "2 1 2 1 3 3", "1 1", "1 1 1", "1 2 1 2"} {
		r, err := ring.Parse(spec)
		if err != nil {
			report("explore: %v", err)
			continue
		}
		k := max(2, r.MaxMultiplicity())
		var protos []core.Protocol
		if r.IsAsymmetric() {
			if p, err := repro.ProtocolFor(r, repro.AlgorithmA, k); err == nil {
				protos = append(protos, p)
			}
			if p, err := repro.ProtocolFor(r, repro.AlgorithmAStar, k); err == nil {
				protos = append(protos, p)
			}
		}
		if r.N() <= 4 { // the randomized state space grows with the round count; keep it exact-checkable
			if p, err := repro.ProtocolFor(r, repro.AlgorithmItaiRodeh, k); err == nil {
				protos = append(protos, p)
			}
		}
		for _, p := range protos {
			res, err := sim.ExploreAll(r, p, 2_000_000)
			if err != nil {
				report("explore %s on %s: %v", p.Name(), r, err)
				continue
			}
			fmt.Fprintf(stdout, "  %s on %-12s: %6d states, leader p%d, %d msgs, max link depth %d\n",
				p.Name(), r, res.States, res.LeaderIndex, res.Messages, res.MaxLinkDepth)
		}
	}
}
