package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestShortCampaignPasses(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-trials", "8", "-seed", "42", "-maxn", "16", "-maxk", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errBuf.String())
	}
	for _, frag := range []string{"seed=42", "exhaustive schedule exploration", "all runs satisfied"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

// TestTCPEngineCampaign drives the sampled loopback-socket cross-checks:
// small rings only, with the trial-5 drop-fault variant included. The
// header line must still name the seed so failures stay reproducible.
func TestTCPEngineCampaign(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-trials", "6", "-seed", "42", "-maxn", "9", "-maxk", "3",
		"-explore=false", "-engine", "tcp"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errBuf.String())
	}
	for _, frag := range []string{"seed=42", "all runs satisfied"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-engine", "quantum"}, &out, &errBuf); code == 0 {
		t.Fatal("unknown engine must exit non-zero")
	}
	if !strings.Contains(errBuf.String(), `unknown engine "quantum"`) {
		t.Errorf("no usable diagnostic:\n%s", errBuf.String())
	}
}

func TestNoExplore(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-trials", "2", "-seed", "7", "-explore=false"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errBuf.String())
	}
	if strings.Contains(out.String(), "exhaustive schedule exploration") {
		t.Error("exploration ran despite -explore=false")
	}
}
