package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestShortCampaignPasses(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-trials", "8", "-seed", "42", "-maxn", "16", "-maxk", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errBuf.String())
	}
	for _, frag := range []string{"seed=42", "exhaustive schedule exploration", "all runs satisfied"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestNoExplore(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-trials", "2", "-seed", "7", "-explore=false"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errBuf.String())
	}
	if strings.Contains(out.String(), "exhaustive schedule exploration") {
		t.Error("exploration ran despite -explore=false")
	}
}
