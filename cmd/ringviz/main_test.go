package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestFigure1(t *testing.T) {
	out, _, code := runCLI(t, "-figure1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, frag := range []string{"phase 1", "phase 4", "g=1", "elected: p0 after 9 phases", "reproduced exactly"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestDOTFigure2(t *testing.T) {
	out, _, code := runCLI(t, "-dot")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, frag := range []string{"digraph Bk_Figure2", "INIT -> COMPUTE", "WIN -> HALT", "label=\"B9\""} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, out)
		}
	}
}

func TestDOTObserved(t *testing.T) {
	out, _, code := runCLI(t, "-dot", "-observed")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "digraph Bk_observed") || !strings.Contains(out, "PASSIVE -> HALT") {
		t.Errorf("observed DOT incomplete:\n%s", out)
	}
}

func TestCustomRingPhaseTable(t *testing.T) {
	out, errOut, code := runCLI(t, "-ring", "1 2 2", "-k", "2", "-phases", "3")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	if !strings.Contains(out, "elected: p0") {
		t.Errorf("phase table output wrong:\n%s", out)
	}
}

func TestFigure1SVG(t *testing.T) {
	out, _, code := runCLI(t, "-figure1", "-svg")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, frag := range []string{"<svg", `id="phase4"`, `fill="black"`, "</svg>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
}

func TestCustomRingSVG(t *testing.T) {
	out, _, code := runCLI(t, "-ring", "1 2 2", "-k", "2", "-svg", "-phases", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, `id="phase2"`) {
		t.Errorf("custom SVG missing panel:\n%s", out[:min(200, len(out))])
	}
}

func TestErrorsAndUsage(t *testing.T) {
	if _, _, code := runCLI(t); code == 0 {
		t.Error("no mode must exit non-zero")
	}
	if _, errOut, code := runCLI(t, "-ring", "1 x"); code == 0 || !strings.Contains(errOut, "bad label") {
		t.Errorf("bad ring: exit %d, stderr %q", code, errOut)
	}
	if _, _, code := runCLI(t, "-ring", "1 2 2", "-k", "1"); code == 0 {
		t.Error("Bk with k=1 must fail")
	}
}
