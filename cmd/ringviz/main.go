// Command ringviz renders the paper's visual artifacts:
//
//	ringviz -figure1          # Figure 1: phase table of Bk (k=3) on [1 3 1 3 2 2 1 2]
//	ringviz -dot              # Figure 2: Bk state diagram as Graphviz DOT
//	ringviz -dot -observed    # DOT of the transitions actually observed in a run
//	ringviz -ring "1 2 2" -k 2 -phases 6   # phase table of any Bk run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figure1  = fs.Bool("figure1", false, "reproduce Figure 1 exactly and diff against the paper")
		svg      = fs.Bool("svg", false, "with -figure1 or -ring: emit the phase panels as SVG instead of text")
		dot      = fs.Bool("dot", false, "emit the Bk state diagram (Figure 2) as Graphviz DOT")
		observed = fs.Bool("observed", false, "with -dot: emit observed transitions instead of the figure")
		spec     = fs.String("ring", "", "ring to run Bk on for a phase table")
		k        = fs.Int("k", 2, "multiplicity bound for -ring")
		phases   = fs.Int("phases", 4, "number of phases to render")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "ringviz:", err)
		return 1
	}

	switch {
	case *figure1:
		table, res, err := experiments.RunFigure1()
		if err != nil {
			return fail(err)
		}
		if *svg {
			var ps []int
			for i := 1; i <= min(*phases, table.Phases()); i++ {
				ps = append(ps, i)
			}
			fmt.Fprint(stdout, table.RenderSVG(ring.Figure1(), trace.SVGOptions{Phases: ps}))
			return 0
		}
		fmt.Fprint(stdout, table.Render(ring.Figure1(), 1, *phases))
		fmt.Fprintf(stdout, "\nelected: p%d after %d phases (paper: p0)\n", res.LeaderIndex, table.Phases())
		if bad := experiments.CheckFigure1(table, res.LeaderIndex); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintln(stdout, "MISMATCH:", b)
			}
			return 1
		}
		fmt.Fprintln(stdout, "Figure 1 reproduced exactly (phases 1-4, active sets, guests, leader).")
		return 0

	case *dot && !*observed:
		fmt.Fprint(stdout, trace.DOT("Bk_Figure2", trace.Figure2Edges))
		return 0

	case *dot && *observed:
		r := ring.Figure1()
		p, err := core.NewBProtocol(3, r.LabelBits())
		if err != nil {
			return fail(err)
		}
		mem := &trace.Mem{}
		if _, err := sim.RunSync(r, p, sim.Options{Sink: mem}); err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, trace.DOT("Bk_observed", trace.Transitions(mem.Events)))
		return 0

	case *spec != "":
		r, err := ring.Parse(*spec)
		if err != nil {
			return fail(err)
		}
		p, err := core.NewBProtocol(*k, r.LabelBits())
		if err != nil {
			return fail(err)
		}
		mem := &trace.Mem{}
		res, err := sim.RunSync(r, p, sim.Options{Sink: mem})
		if err != nil {
			return fail(err)
		}
		table := trace.BuildPhaseTable(mem.Events, r.N())
		if *svg {
			var ps []int
			for i := 1; i <= min(*phases, table.Phases()); i++ {
				ps = append(ps, i)
			}
			fmt.Fprint(stdout, table.RenderSVG(r, trace.SVGOptions{Phases: ps}))
			return 0
		}
		fmt.Fprint(stdout, table.Render(r, 1, *phases))
		fmt.Fprintf(stdout, "\nelected: p%d after %d phases\n", res.LeaderIndex, table.Phases())
		return 0

	default:
		fs.Usage()
		return 2
	}
}
