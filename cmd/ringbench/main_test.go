package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1", "E6", "E11"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	out, errOut, code := runCLI(t, "-quick", "-e", "E6")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	if !strings.Contains(out, "Figure 1 reproduced exactly") {
		t.Errorf("E6 did not reproduce:\n%s", out)
	}
}

func TestMultipleExperiments(t *testing.T) {
	out, errOut, code := runCLI(t, "-quick", "-e", "E1, e2")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	if !strings.Contains(out, "== E1:") || !strings.Contains(out, "== E2:") {
		t.Errorf("missing tables:\n%s", out)
	}
}

func TestMarkdownFormat(t *testing.T) {
	out, errOut, code := runCLI(t, "-quick", "-e", "E6", "-format", "md")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	for _, frag := range []string{"## E6 —", "| phase |", "|---|", "> Figure 1 reproduced exactly."} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
	if _, _, code := runCLI(t, "-e", "E6", "-format", "yaml"); code == 0 {
		t.Error("unknown format must fail")
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, errOut, code := runCLI(t, "-e", "E99")
	if code == 0 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("exit %d, stderr %q", code, errOut)
	}
}

// TestParallelByteIdentity is the acceptance gate of the sweep engine:
// the full -quick experiment suite must render byte-identically at every
// worker-pool width, including the serial pool.
func TestParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite comparison skipped in -short mode")
	}
	serial, errOut, code := runCLI(t, "-quick", "-par", "1")
	if code != 0 {
		t.Fatalf("-par 1 exit %d (%s)", code, errOut)
	}
	for _, par := range []string{"2", "3", "8"} {
		out, errOut, code := runCLI(t, "-quick", "-par", par)
		if code != 0 {
			t.Fatalf("-par %s exit %d (%s)", par, code, errOut)
		}
		if out != serial {
			t.Errorf("-par %s output differs from -par 1 (lengths %d vs %d)", par, len(out), len(serial))
		}
	}
}

func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	_, errOut, code := runCLI(t, "-quick", "-e", "E4,E6", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema      string `json:"schema"`
		Par         int    `json:"par"`
		Engine      string `json:"engine"`
		Experiments []struct {
			ID     string     `json:"id"`
			WallMS float64    `json:"wall_ms"`
			Rows   [][]string `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "ringbench/bench/v1" {
		t.Errorf("schema = %q", report.Schema)
	}
	if report.Engine != "sim+goroutines+tcp" {
		t.Errorf("engine = %q, want the three-engine roster", report.Engine)
	}
	if len(report.Experiments) != 2 || report.Experiments[0].ID != "E4" || report.Experiments[1].ID != "E6" {
		t.Fatalf("unexpected experiments: %+v", report.Experiments)
	}
	for _, e := range report.Experiments {
		if len(e.Rows) == 0 {
			t.Errorf("%s has no rows", e.ID)
		}
		if e.WallMS < 0 {
			t.Errorf("%s wall_ms = %f", e.ID, e.WallMS)
		}
	}
}

func TestFullQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short mode")
	}
	out, errOut, code := runCLI(t, "-quick")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	for i := 1; i <= 11; i++ {
		if !strings.Contains(out, "== E") {
			t.Fatalf("no tables rendered")
		}
	}
}
