package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1", "E6", "E11"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	out, errOut, code := runCLI(t, "-quick", "-e", "E6")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	if !strings.Contains(out, "Figure 1 reproduced exactly") {
		t.Errorf("E6 did not reproduce:\n%s", out)
	}
}

func TestMultipleExperiments(t *testing.T) {
	out, errOut, code := runCLI(t, "-quick", "-e", "E1, e2")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	if !strings.Contains(out, "== E1:") || !strings.Contains(out, "== E2:") {
		t.Errorf("missing tables:\n%s", out)
	}
}

func TestMarkdownFormat(t *testing.T) {
	out, errOut, code := runCLI(t, "-quick", "-e", "E6", "-format", "md")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	for _, frag := range []string{"## E6 —", "| phase |", "|---|", "> Figure 1 reproduced exactly."} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
	if _, _, code := runCLI(t, "-e", "E6", "-format", "yaml"); code == 0 {
		t.Error("unknown format must fail")
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, errOut, code := runCLI(t, "-e", "E99")
	if code == 0 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("exit %d, stderr %q", code, errOut)
	}
}

func TestFullQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short mode")
	}
	out, errOut, code := runCLI(t, "-quick")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	for i := 1; i <= 11; i++ {
		if !strings.Contains(out, "== E") {
			t.Fatalf("no tables rendered")
		}
	}
}
