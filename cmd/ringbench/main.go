// Command ringbench regenerates the experiment tables E1…E14 of DESIGN.md:
// every table and figure artifact of "Leader Election in Asymmetric Labeled
// Unidirectional Rings" (Altisen et al., IPPS 2017) as measured by the
// simulator, goroutine, and TCP transport engines.
//
// Usage:
//
//	ringbench             # run every experiment
//	ringbench -e E4,E5    # run selected experiments
//	ringbench -quick      # smaller parameter sweeps
//	ringbench -seed 7     # change the randomization seed
//	ringbench -par 8      # worker-pool width (default: one per CPU)
//	ringbench -json f.json # also write a machine-readable benchmark report
//	ringbench -list       # list experiment ids
//
// Experiment grids fan out across -par workers (internal/sweep); tables
// are byte-identical at every width, so -par only changes wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/ring"

	repro "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonExperiment is one experiment's entry in the -json report: the full
// table (rows carry the domain metrics — messages, time units, space
// bits) plus the wall-clock time of the run, so successive reports can be
// diffed both for determinism (rows) and performance (wall time). See
// cmd/benchdiff.
type jsonExperiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	WallMS float64    `json:"wall_ms"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes"`
}

// jsonAlgorithm fingerprints one registry algorithm for the report: a
// deterministic reference election (the first reference ring the
// algorithm can serve) with its exact leader, message count, and payload
// bit count. cmd/benchdiff compares these between reports — an
// algorithm present in only one report, or whose reference outcome
// moved, is drift, exactly like a changed experiment row.
type jsonAlgorithm struct {
	Name      string `json:"name"`
	Ring      string `json:"ring"`
	K         int    `json:"k"`
	Leader    int    `json:"leader"`
	Messages  int    `json:"messages"`
	TotalBits int    `json:"total_bits"`
}

// jsonReport is the schema of the -json output. Engine names the engine
// roster the experiments exercise; benchdiff refuses to compare reports
// whose rosters differ (old reports without the field stay comparable).
type jsonReport struct {
	Schema      string           `json:"schema"`
	Seed        int64            `json:"seed"`
	Quick       bool             `json:"quick"`
	Par         int              `json:"par"`
	Engine      string           `json:"engine"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Algorithms  []jsonAlgorithm  `json:"algorithms,omitempty"`
	TotalWallMS float64          `json:"total_wall_ms"`
	Experiments []jsonExperiment `json:"experiments"`
}

// algorithmRoster runs every registry algorithm on the first reference
// ring it accepts. The symmetric ring leads the candidate list so the
// randomized engine's fingerprint records the capability the
// deterministic algorithms lack; they fall through to the paper's
// Figure 1 ring or, for unique-label protocols, the distinct ring.
func algorithmRoster() ([]jsonAlgorithm, error) {
	refs := []string{"3 3 3 3 3 3", "1 3 1 3 2 2 1 2", "1 2 3 4 5"}
	const k = 3
	var roster []jsonAlgorithm
	for _, alg := range repro.Algorithms() {
		var entry *jsonAlgorithm
		for _, spec := range refs {
			r, err := ring.Parse(spec)
			if err != nil {
				return nil, err
			}
			if _, err := repro.ProtocolFor(r, alg, k); err != nil {
				continue
			}
			out, err := repro.Elect(r, alg, k)
			if err != nil {
				return nil, fmt.Errorf("%s on %q: %w", alg, spec, err)
			}
			entry = &jsonAlgorithm{
				Name: alg.String(), Ring: spec, K: k,
				Leader: out.Leader, Messages: out.Messages, TotalBits: out.TotalBits,
			}
			break
		}
		if entry == nil {
			return nil, fmt.Errorf("algorithm %s accepts no reference ring", alg)
		}
		roster = append(roster, *entry)
	}
	return roster, nil
}

// engineRoster is the engine set behind the current experiment suite: the
// deterministic simulator schedules, the goroutine runtime, and the TCP
// transport engine (E10's three-way cross-validation).
const engineRoster = "sim+goroutines+tcp"

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only     = fs.String("e", "", "comma-separated experiment ids to run (default: all)")
		seed     = fs.Int64("seed", 1, "random seed for generated rings and schedules")
		quick    = fs.Bool("quick", false, "shrink parameter sweeps")
		list     = fs.Bool("list", false, "list experiments and exit")
		format   = fs.String("format", "text", "output format: text, md")
		par      = fs.Int("par", runtime.NumCPU(), "experiment-grid worker count (results are identical at any value)")
		jsonPath = fs.String("json", "", "write a machine-readable benchmark report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Fprintf(stdout, "%-4s %s\n", r.ID, r.Title)
		}
		return 0
	}

	suite := &experiments.Suite{Seed: *seed, Quick: *quick, Workers: *par}
	var selected []experiments.Runner
	if *only == "" {
		selected = experiments.Runners()
	} else {
		for _, id := range strings.Split(*only, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "ringbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, r)
		}
	}

	algs, err := algorithmRoster()
	if err != nil {
		fmt.Fprintf(stderr, "ringbench: algorithm roster: %v\n", err)
		return 1
	}
	report := jsonReport{
		Schema:     "ringbench/bench/v1",
		Seed:       *seed,
		Quick:      *quick,
		Par:        *par,
		Engine:     engineRoster,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Algorithms: algs,
	}
	failed := 0
	total := time.Now()
	for _, r := range selected {
		start := time.Now()
		table, err := r.Run(suite)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(stderr, "ringbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:     table.ID,
			Title:  table.Title,
			WallMS: float64(wall.Microseconds()) / 1000,
			Header: table.Header,
			Rows:   table.Rows,
			Notes:  table.Notes,
		})
		var renderErr error
		switch *format {
		case "md":
			renderErr = table.RenderMarkdown(stdout)
		case "text":
			renderErr = table.Render(stdout)
		default:
			fmt.Fprintf(stderr, "ringbench: unknown format %q (want text or md)\n", *format)
			return 2
		}
		if renderErr != nil {
			fmt.Fprintf(stderr, "ringbench: rendering %s: %v\n", r.ID, renderErr)
			failed++
		}
		for _, n := range table.Notes {
			if strings.HasPrefix(n, "FAIL") || strings.HasPrefix(n, "MISMATCH") {
				failed++
			}
		}
	}
	report.TotalWallMS = float64(time.Since(total).Microseconds()) / 1000

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "ringbench: encoding report: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "ringbench: writing report: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "ringbench: %d failure(s)\n", failed)
		return 1
	}
	return 0
}
