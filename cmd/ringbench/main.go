// Command ringbench regenerates the experiment tables E1…E11 of DESIGN.md:
// every table and figure artifact of "Leader Election in Asymmetric Labeled
// Unidirectional Rings" (Altisen et al., IPPS 2017) as measured by the
// simulator and goroutine engines.
//
// Usage:
//
//	ringbench            # run every experiment
//	ringbench -e E4,E5   # run selected experiments
//	ringbench -quick     # smaller parameter sweeps
//	ringbench -seed 7    # change the randomization seed
//	ringbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only   = fs.String("e", "", "comma-separated experiment ids to run (default: all)")
		seed   = fs.Int64("seed", 1, "random seed for generated rings and schedules")
		quick  = fs.Bool("quick", false, "shrink parameter sweeps")
		list   = fs.Bool("list", false, "list experiments and exit")
		format = fs.String("format", "text", "output format: text, md")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Fprintf(stdout, "%-4s %s\n", r.ID, r.Title)
		}
		return 0
	}

	suite := &experiments.Suite{Seed: *seed, Quick: *quick}
	var selected []experiments.Runner
	if *only == "" {
		selected = experiments.Runners()
	} else {
		for _, id := range strings.Split(*only, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "ringbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, r)
		}
	}

	failed := 0
	for _, r := range selected {
		table, err := r.Run(suite)
		if err != nil {
			fmt.Fprintf(stderr, "ringbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		var renderErr error
		switch *format {
		case "md":
			renderErr = table.RenderMarkdown(stdout)
		case "text":
			renderErr = table.Render(stdout)
		default:
			fmt.Fprintf(stderr, "ringbench: unknown format %q (want text or md)\n", *format)
			return 2
		}
		if renderErr != nil {
			fmt.Fprintf(stderr, "ringbench: rendering %s: %v\n", r.ID, renderErr)
			failed++
		}
		for _, n := range table.Notes {
			if strings.HasPrefix(n, "FAIL") || strings.HasPrefix(n, "MISMATCH") {
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "ringbench: %d failure(s)\n", failed)
		return 1
	}
	return 0
}
