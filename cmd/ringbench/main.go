// Command ringbench regenerates the experiment tables E1…E13 of DESIGN.md:
// every table and figure artifact of "Leader Election in Asymmetric Labeled
// Unidirectional Rings" (Altisen et al., IPPS 2017) as measured by the
// simulator, goroutine, and TCP transport engines.
//
// Usage:
//
//	ringbench             # run every experiment
//	ringbench -e E4,E5    # run selected experiments
//	ringbench -quick      # smaller parameter sweeps
//	ringbench -seed 7     # change the randomization seed
//	ringbench -par 8      # worker-pool width (default: one per CPU)
//	ringbench -json f.json # also write a machine-readable benchmark report
//	ringbench -list       # list experiment ids
//
// Experiment grids fan out across -par workers (internal/sweep); tables
// are byte-identical at every width, so -par only changes wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonExperiment is one experiment's entry in the -json report: the full
// table (rows carry the domain metrics — messages, time units, space
// bits) plus the wall-clock time of the run, so successive reports can be
// diffed both for determinism (rows) and performance (wall time). See
// cmd/benchdiff.
type jsonExperiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	WallMS float64    `json:"wall_ms"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes"`
}

// jsonReport is the schema of the -json output. Engine names the engine
// roster the experiments exercise; benchdiff refuses to compare reports
// whose rosters differ (old reports without the field stay comparable).
type jsonReport struct {
	Schema      string           `json:"schema"`
	Seed        int64            `json:"seed"`
	Quick       bool             `json:"quick"`
	Par         int              `json:"par"`
	Engine      string           `json:"engine"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	TotalWallMS float64          `json:"total_wall_ms"`
	Experiments []jsonExperiment `json:"experiments"`
}

// engineRoster is the engine set behind the current experiment suite: the
// deterministic simulator schedules, the goroutine runtime, and the TCP
// transport engine (E10's three-way cross-validation).
const engineRoster = "sim+goroutines+tcp"

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only     = fs.String("e", "", "comma-separated experiment ids to run (default: all)")
		seed     = fs.Int64("seed", 1, "random seed for generated rings and schedules")
		quick    = fs.Bool("quick", false, "shrink parameter sweeps")
		list     = fs.Bool("list", false, "list experiments and exit")
		format   = fs.String("format", "text", "output format: text, md")
		par      = fs.Int("par", runtime.NumCPU(), "experiment-grid worker count (results are identical at any value)")
		jsonPath = fs.String("json", "", "write a machine-readable benchmark report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Fprintf(stdout, "%-4s %s\n", r.ID, r.Title)
		}
		return 0
	}

	suite := &experiments.Suite{Seed: *seed, Quick: *quick, Workers: *par}
	var selected []experiments.Runner
	if *only == "" {
		selected = experiments.Runners()
	} else {
		for _, id := range strings.Split(*only, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "ringbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, r)
		}
	}

	report := jsonReport{
		Schema:     "ringbench/bench/v1",
		Seed:       *seed,
		Quick:      *quick,
		Par:        *par,
		Engine:     engineRoster,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	failed := 0
	total := time.Now()
	for _, r := range selected {
		start := time.Now()
		table, err := r.Run(suite)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(stderr, "ringbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:     table.ID,
			Title:  table.Title,
			WallMS: float64(wall.Microseconds()) / 1000,
			Header: table.Header,
			Rows:   table.Rows,
			Notes:  table.Notes,
		})
		var renderErr error
		switch *format {
		case "md":
			renderErr = table.RenderMarkdown(stdout)
		case "text":
			renderErr = table.Render(stdout)
		default:
			fmt.Fprintf(stderr, "ringbench: unknown format %q (want text or md)\n", *format)
			return 2
		}
		if renderErr != nil {
			fmt.Fprintf(stderr, "ringbench: rendering %s: %v\n", r.ID, renderErr)
			failed++
		}
		for _, n := range table.Notes {
			if strings.HasPrefix(n, "FAIL") || strings.HasPrefix(n, "MISMATCH") {
				failed++
			}
		}
	}
	report.TotalWallMS = float64(time.Since(total).Microseconds()) / 1000

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "ringbench: encoding report: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "ringbench: writing report: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "ringbench: %d failure(s)\n", failed)
		return 1
	}
	return 0
}
