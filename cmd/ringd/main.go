// Command ringd serves leader elections over HTTP/JSON (internal/serve):
// POST /v1/elect and /v1/classify, GET /healthz, /readyz and /metrics. It
// owns the process-level concerns: flags, signals, and the shutdown
// ordering the serve package requires (flip /readyz to 503 so load
// balancers stop routing here, stop accepting connections, then drain the
// admission queue).
//
//	ringd -listen 127.0.0.1:8322 -workers 4 -crosscheck 0.05
//
// With -wire-addr a second listener speaks RGV1, the multiplexed binary
// wire protocol (internal/serve wire.go): persistent connections,
// pipelined binary ELECT frames answered out of order by request id,
// sharing the HTTP path's cache, admission, metrics, and crosscheck
// machinery. HTTP stays on -listen for compatibility; the wire port is
// the hot path:
//
//	ringd -listen 127.0.0.1:8322 -wire-addr 127.0.0.1:8323
//
// With -crosscheck > 0 a sampled fraction of cache hits is re-verified
// through the deterministic simulator; a divergence is fatal — the
// daemon logs the offending ring and exits 1 rather than keep serving
// from a cache that has broken the engines' agreement invariant.
//
// With -pprof addr a second listener serves net/http/pprof (and an
// expvar dump) on that address, kept off the serving mux so profiling
// traffic never competes with election traffic for the serving listener:
//
//	ringd -listen 127.0.0.1:8322 -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served on -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/secure"
	"repro/internal/serve"
)

func main() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() { <-sigc; close(stop) }()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

// run is the testable body of main: it returns the exit code and shuts
// down gracefully when stop closes.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("ringd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", "127.0.0.1:8322", "address to listen on (host:port; port 0 picks a free port)")
		wireAddr     = fs.String("wire-addr", "", "serve the RGV1 binary wire protocol on this address (empty disables)")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
		cache        = fs.Int("cache", 4096, "result cache capacity in entries")
		cacheShards  = fs.Int("cache-shards", 0, "cache shard count, rounded up to a power of two (0 = auto)")
		queue        = fs.Int("queue", 256, "admission queue depth; overflow is shed with 429")
		workers      = fs.Int("workers", 0, "election worker pool size (0 = one per CPU)")
		batch        = fs.Int("batch", 16, "max elections fanned out per admission batch")
		batchWait    = fs.Duration("batch-wait", 2*time.Millisecond, "how long to wait to fill a batch")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request queue+election budget")
		electTimeout = fs.Duration("elect-timeout", time.Minute, "goroutine engine watchdog")
		maxRing      = fs.Int("max-ring", 4096, "largest accepted ring size")
		crosscheck   = fs.Float64("crosscheck", 0, "fraction of cache hits re-verified against a fresh election (0 disables, 1 checks every hit)")
		logEvery     = fs.Duration("log-every", time.Minute, "metrics summary log period (0 disables)")
		drainWait    = fs.Duration("drain-wait", 30*time.Second, "how long shutdown waits for in-flight requests")

		keyFile     = fs.String("keyfile", "", "ringsec private key file; requires authenticated encryption on the wire port")
		allowedKeys = fs.String("allowed-keys", "", "file of client public keys (one base64 key per line) allowed on the secure wire port; empty allows any authenticated client")
		genKey      = fs.String("genkey", "", "generate a fresh private key, write it to the given path, print the public key, and exit")
		rlRate      = fs.Float64("rate-limit", 0, "per-peer sustained requests/sec on elect endpoints (0 disables); peers are key fingerprints on the secure wire port, remote hosts elsewhere")
		rlBurst     = fs.Int("rate-burst", 0, "per-peer burst allowance (0 = ceil of -rate-limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *genKey != "" {
		key, err := secure.GenerateKey()
		if err != nil {
			fmt.Fprintf(stderr, "ringd: %v\n", err)
			return 1
		}
		if err := secure.WriteKeyFile(*genKey, key); err != nil {
			fmt.Fprintf(stderr, "ringd: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, key.Public().String())
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ringd: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *crosscheck < 0 || *crosscheck > 1 {
		fmt.Fprintf(stderr, "ringd: -crosscheck must be in [0, 1]\n")
		return 2
	}
	var wireSec *secure.ServerConfig
	if *keyFile != "" {
		if *wireAddr == "" {
			fmt.Fprintf(stderr, "ringd: -keyfile requires -wire-addr (only the wire port speaks ringsec)\n")
			return 2
		}
		identity, err := secure.LoadKeyFile(*keyFile)
		if err != nil {
			fmt.Fprintf(stderr, "ringd: %v\n", err)
			return 1
		}
		wireSec = &secure.ServerConfig{Config: secure.Config{Identity: identity}}
		if *allowedKeys != "" {
			allowed, err := secure.LoadPeerKeys(*allowedKeys)
			if err != nil {
				fmt.Fprintf(stderr, "ringd: %v\n", err)
				return 1
			}
			wireSec.Allowed = allowed
		}
	} else if *allowedKeys != "" {
		fmt.Fprintf(stderr, "ringd: -allowed-keys requires -keyfile\n")
		return 2
	}
	var rateLimit *serve.RateLimitConfig
	if *rlRate > 0 {
		rateLimit = &serve.RateLimitConfig{Rate: *rlRate, Burst: *rlBurst}
	}

	logger := log.New(stderr, "ringd: ", log.LstdFlags)
	// A divergence report parks here; the main select turns it into a
	// loud, graceful exit 1. Buffered so the reporting request never
	// blocks on the daemon's teardown.
	diverged := make(chan string, 1)
	s := serve.New(serve.Config{
		CacheEntries:   *cache,
		CacheShards:    *cacheShards,
		QueueDepth:     *queue,
		Workers:        *workers,
		BatchSize:      *batch,
		BatchWait:      *batchWait,
		RequestTimeout: *reqTimeout,
		ElectTimeout:   *electTimeout,
		MaxRingSize:    *maxRing,
		Crosscheck:     *crosscheck,
		OnDivergence: func(detail string) {
			select {
			case diverged <- detail:
			default:
			}
		},
		Logf:      logger.Printf,
		LogEvery:  *logEvery,
		RateLimit: rateLimit,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "ringd: %v\n", err)
		s.Close()
		return 1
	}
	fmt.Fprintf(stdout, "ringd: listening on %s\n", ln.Addr())
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "ringd: pprof listener: %v\n", err)
			ln.Close()
			s.Close()
			return 1
		}
		defer pln.Close()
		fmt.Fprintf(stdout, "ringd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		// The blank net/http/pprof import registers on the default mux;
		// serving it on its own listener keeps profiling off the API port.
		go func() { _ = http.Serve(pln, http.DefaultServeMux) }()
	}
	// The wire front end shares every layer behind the HTTP mux — cache,
	// admission, metrics, crosscheck — so the two protocols can never
	// disagree about an election.
	var ws *serve.WireServer
	var wireErr chan error // nil (never ready) when the wire port is off
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(stderr, "ringd: wire listener: %v\n", err)
			ln.Close()
			s.Close()
			return 1
		}
		if wireSec != nil {
			fmt.Fprintf(stdout, "ringd: wire listening on %s (ringsec, key %s)\n",
				wln.Addr(), wireSec.Identity.Public().ShortFingerprint())
		} else {
			fmt.Fprintf(stdout, "ringd: wire listening on %s\n", wln.Addr())
		}
		ws = serve.NewWireServerWith(s, serve.WireServerOptions{Secure: wireSec, RateLimit: rateLimit})
		wireErr = make(chan error, 1)
		go func() { wireErr <- ws.Serve(wln) }()
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	exit := 0
	var why string
	select {
	case <-stop:
		why = "signal"
	case detail := <-diverged:
		logger.Printf("FATAL: crosscheck divergence: %s", detail)
		why = "crosscheck divergence"
		exit = 1
	case err := <-serveErr:
		logger.Printf("serve error: %v", err)
		s.Close()
		return 1
	case err := <-wireErr:
		logger.Printf("wire serve error: %v", err)
		s.Close()
		return 1
	}

	logger.Printf("shutting down (%s): draining in-flight elections", why)
	// Readiness goes first: /readyz answers 503 from this instant, while
	// /healthz and the serving endpoints keep working until the drain ends.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		exit = 1
	}
	if ws != nil {
		// Same drain discipline as HTTP: answer everything in flight,
		// flush each connection's writer completely, then close — a wire
		// client never sees a truncated frame.
		if err := ws.Shutdown(ctx); err != nil {
			logger.Printf("wire shutdown: %v", err)
			exit = 1
		}
	}
	s.Close() // after Shutdown: no new requests can enter the queue
	snap := s.Metrics().Snapshot()
	logger.Printf("final: requests=%d hits=%d misses=%d sheds=%d errors=%d crosschecks=%d divergences=%d panics=%d",
		snap.Requests, snap.Hits, snap.Misses, snap.Sheds, snap.Errors, snap.Crosschecks, snap.Divergences, snap.Panics)
	return exit
}
