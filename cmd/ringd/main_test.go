package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/ring"
	"repro/internal/secure"
	"repro/internal/serve"

	repro "repro"
)

// syncBuffer lets the daemon goroutine write stdout while the test
// polls it for the listen line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`ringd: listening on ([\d.]+:\d+)`)

// startDaemon runs the daemon on a free port and returns its base URL,
// the stop channel, and the exit-code channel.
func startDaemon(t *testing.T, extra ...string) (string, chan struct{}, chan int, *syncBuffer) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-log-every", "0"}, extra...)
	go func() { exit <- run(args, stdout, stderr, stop) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], stop, exit, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d; stderr=%q", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestDaemonServesAndDrains boots the daemon, performs real HTTP
// traffic, then stops it and checks the graceful exit path.
func TestDaemonServesAndDrains(t *testing.T) {
	url, stop, exit, stderr := startDaemon(t, "-workers", "2", "-crosscheck", "1")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	for i := 0; i < 3; i++ {
		resp, err := http.Post(url+"/v1/elect", "application/json",
			strings.NewReader(`{"ring":"1 3 1 3 2 2 1 2","alg":"B","k":3}`))
		if err != nil {
			t.Fatalf("elect %d: %v", i, err)
		}
		var out struct {
			Leader int  `json:"leader"`
			Cached bool `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("elect %d: decoding: %v", i, err)
		}
		resp.Body.Close()
		if out.Leader != 0 {
			t.Errorf("elect %d: leader %d, want 0", i, out.Leader)
		}
		if wantCached := i > 0; out.Cached != wantCached {
			t.Errorf("elect %d: cached=%t, want %t", i, out.Cached, wantCached)
		}
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ringd_cache_hits_total 2") {
		t.Errorf("metrics missing hit count:\n%s", body)
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if s := stderr.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "final:") {
		t.Errorf("shutdown log incomplete: %q", s)
	}
}

var pprofLine = regexp.MustCompile(`ringd: pprof on (http://[\d.]+:\d+)`)

// TestDaemonPprofListener: -pprof serves the profiling endpoints on a
// separate listener, off the API port.
func TestDaemonPprofListener(t *testing.T) {
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-listen", "127.0.0.1:0", "-pprof", "127.0.0.1:0", "-log-every", "0"}, stdout, stderr, stop)
	}()
	var apiURL, pprofURL string
	deadline := time.Now().Add(10 * time.Second)
	for apiURL == "" || pprofURL == "" {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			apiURL = "http://" + m[1]
		}
		if m := pprofLine.FindStringSubmatch(stdout.String()); m != nil {
			pprofURL = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced both addresses; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(pprofURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof status %d, want 200", resp.StatusCode)
	}
	// The API listener must NOT expose the profiler.
	resp, err = http.Get(apiURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("api probe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("profiler leaked onto the serving mux")
	}
	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonBadFlags covers the usage-error exits.
func TestDaemonBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-crosscheck", "1.5"},
		{"trailing"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb, make(chan struct{})); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestDaemonListenFailure: an unbindable address must exit 1, not hang.
func TestDaemonListenFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-listen", "256.0.0.1:1"}, &out, &errb, make(chan struct{})); code != 1 {
		t.Errorf("exit %d, want 1; stderr=%q", code, errb.String())
	}
}

var wireListenLine = regexp.MustCompile(`ringd: wire listening on ([\d.]+:\d+)`)

// startWireDaemon boots the daemon with both ports and waits for both
// listen announcements.
func startWireDaemon(t *testing.T, extra ...string) (string, string, chan struct{}, chan int, *syncBuffer, *syncBuffer) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-wire-addr", "127.0.0.1:0", "-log-every", "0"}, extra...)
	go func() { exit <- run(args, stdout, stderr, stop) }()

	var baseURL, wireAddr string
	deadline := time.Now().Add(10 * time.Second)
	for baseURL == "" || wireAddr == "" {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			baseURL = "http://" + m[1]
		}
		if m := wireListenLine.FindStringSubmatch(stdout.String()); m != nil {
			wireAddr = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced both addresses; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d; stderr=%q", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return baseURL, wireAddr, stop, exit, stdout, stderr
}

// stopDaemon closes the stop channel and requires a clean exit.
func stopDaemon(t *testing.T, stop chan struct{}, exit chan int, stderr *syncBuffer) {
	t.Helper()
	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonSecureWireMatchesPlaintext is the encrypted-transport
// acceptance run: the same seeded crosschecking mix is driven over a
// plaintext daemon and over a -keyfile daemon (with the client pinned in
// -allowed-keys), and the two reports must agree exactly — encryption
// changes what crosses the socket, never an election outcome or the
// cache's behavior. The secure daemon must also announce its key
// fingerprint so operators can pin it.
func TestDaemonSecureWireMatchesPlaintext(t *testing.T) {
	dir := t.TempDir()
	serverKey, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	clientKey, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	keyPath := filepath.Join(dir, "ringd.key")
	if err := secure.WriteKeyFile(keyPath, serverKey); err != nil {
		t.Fatal(err)
	}
	allowedPath := filepath.Join(dir, "allowed.keys")
	if err := os.WriteFile(allowedPath, []byte(clientKey.Public().String()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	loadCfg := func(baseURL, wireAddr string, sec *secure.ClientConfig) load.Config {
		return load.Config{
			BaseURL:    baseURL,
			Proto:      load.ProtoWire,
			WireAddr:   wireAddr,
			WireConns:  2,
			WireSecure: sec,
			Requests:   60,
			Workers:    4,
			Seed:       11,
			Alg:        "B",
			K:          3,
			Crosscheck: 0.5,
		}
	}

	baseURL, wireAddr, stop, exit, _, stderr := startWireDaemon(t, "-workers", "2", "-crosscheck", "1")
	plain, err := load.Run(loadCfg(baseURL, wireAddr, nil))
	if err != nil {
		t.Fatalf("plaintext load: %v", err)
	}
	stopDaemon(t, stop, exit, stderr)

	baseURL, wireAddr, stop, exit, stdout, stderr := startWireDaemon(t,
		"-workers", "2", "-crosscheck", "1", "-keyfile", keyPath, "-allowed-keys", allowedPath)
	if s := stdout.String(); !strings.Contains(s, "ringsec, key "+serverKey.Public().ShortFingerprint()) {
		t.Errorf("secure daemon did not announce its fingerprint: %q", s)
	}
	enc, err := load.Run(loadCfg(baseURL, wireAddr, &secure.ClientConfig{
		Config:    secure.Config{Identity: clientKey},
		ServerKey: serverKey.Public(),
	}))
	if err != nil {
		t.Fatalf("encrypted load: %v", err)
	}

	if plain.OK != 60 || plain.TransportErrors != 0 || plain.Divergences != 0 {
		t.Fatalf("plaintext baseline unhealthy: %+v", plain)
	}
	if enc.OK != plain.OK || enc.TransportErrors != plain.TransportErrors ||
		enc.Cached != plain.Cached || enc.Crosschecks != plain.Crosschecks ||
		enc.Divergences != plain.Divergences {
		t.Errorf("encrypted run diverged from plaintext:\nplain: %+v\nenc:   %+v", plain, enc)
	}
	stopDaemon(t, stop, exit, stderr)
}

// TestDaemonSecureFlagErrors covers the ringsec usage and key-loading
// exits.
func TestDaemonSecureFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want int
	}{
		{[]string{"-keyfile", "x.key"}, 2},                                           // no -wire-addr
		{[]string{"-allowed-keys", "x.keys"}, 2},                                     // no -keyfile
		{[]string{"-wire-addr", "127.0.0.1:0", "-keyfile", "/no/such/ringd.key"}, 1}, // unreadable key
	} {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb, make(chan struct{})); code != tc.want {
			t.Errorf("run(%v) = %d, want %d; stderr=%q", tc.args, code, tc.want, errb.String())
		}
	}
}

// TestDaemonWireServesAndDrains is the -wire-addr acceptance run: boot
// the daemon with both ports, drive a seeded crosschecking load mix
// over the RGV1 binary protocol, require zero divergences, then take
// the daemon down mid-connection and check the wire drain is graceful —
// clean exit, final accounting, no truncation-class client errors.
func TestDaemonWireServesAndDrains(t *testing.T) {
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	args := []string{"-listen", "127.0.0.1:0", "-wire-addr", "127.0.0.1:0", "-log-every", "0", "-workers", "2", "-crosscheck", "1"}
	go func() { exit <- run(args, stdout, stderr, stop) }()

	var baseURL, wireAddr string
	deadline := time.Now().Add(10 * time.Second)
	for baseURL == "" || wireAddr == "" {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			baseURL = "http://" + m[1]
		}
		if m := wireListenLine.FindStringSubmatch(stdout.String()); m != nil {
			wireAddr = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced both addresses; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d; stderr=%q", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}

	rep, err := load.Run(load.Config{
		BaseURL:    baseURL,
		Proto:      load.ProtoWire,
		WireAddr:   wireAddr,
		WireConns:  2,
		Requests:   80,
		Workers:    4,
		Seed:       7,
		Alg:        "B",
		K:          3,
		Crosscheck: 0.5,
	})
	if err != nil {
		t.Fatalf("wire load: %v", err)
	}
	if rep.OK != 80 || rep.TransportErrors != 0 {
		t.Errorf("wire run: ok=%d transport=%d, want 80/0", rep.OK, rep.TransportErrors)
	}
	if rep.Crosschecks == 0 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d, want >0 and 0", rep.Crosschecks, rep.Divergences)
	}
	if rep.Cached == 0 {
		t.Error("hot mix produced no cache hits over the wire")
	}

	// Hold a live wire connection with traffic across the shutdown: every
	// call must end in a complete result, a typed draining error, or a
	// clean close — a decode error would mean a truncated frame.
	c, err := serve.DialWire(wireAddr, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	labels := ring.Figure1().LabelsView()
	if _, err := c.Elect(labels, repro.AlgorithmB, 3); err != nil {
		t.Fatalf("pre-drain elect: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := c.Elect(labels, repro.AlgorithmB, 3); err != nil {
				done <- err
				return
			}
		}
	}()
	close(stop)
	select {
	case err := <-done:
		var we *serve.WireError
		switch {
		case errors.Is(err, serve.ErrWireClientClosed):
		case errors.As(err, &we) && we.Status == 503:
		default:
			t.Errorf("drain surfaced %v — want a typed 503 or a clean close", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wire connection never observed the drain")
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if s := stderr.String(); !strings.Contains(s, "final:") {
		t.Errorf("missing final accounting: %q", s)
	}
}
