package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the daemon goroutine write stdout while the test
// polls it for the listen line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`ringd: listening on ([\d.]+:\d+)`)

// startDaemon runs the daemon on a free port and returns its base URL,
// the stop channel, and the exit-code channel.
func startDaemon(t *testing.T, extra ...string) (string, chan struct{}, chan int, *syncBuffer) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-log-every", "0"}, extra...)
	go func() { exit <- run(args, stdout, stderr, stop) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], stop, exit, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d; stderr=%q", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestDaemonServesAndDrains boots the daemon, performs real HTTP
// traffic, then stops it and checks the graceful exit path.
func TestDaemonServesAndDrains(t *testing.T) {
	url, stop, exit, stderr := startDaemon(t, "-workers", "2", "-crosscheck", "1")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	for i := 0; i < 3; i++ {
		resp, err := http.Post(url+"/v1/elect", "application/json",
			strings.NewReader(`{"ring":"1 3 1 3 2 2 1 2","alg":"B","k":3}`))
		if err != nil {
			t.Fatalf("elect %d: %v", i, err)
		}
		var out struct {
			Leader int  `json:"leader"`
			Cached bool `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("elect %d: decoding: %v", i, err)
		}
		resp.Body.Close()
		if out.Leader != 0 {
			t.Errorf("elect %d: leader %d, want 0", i, out.Leader)
		}
		if wantCached := i > 0; out.Cached != wantCached {
			t.Errorf("elect %d: cached=%t, want %t", i, out.Cached, wantCached)
		}
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ringd_cache_hits_total 2") {
		t.Errorf("metrics missing hit count:\n%s", body)
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if s := stderr.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "final:") {
		t.Errorf("shutdown log incomplete: %q", s)
	}
}

var pprofLine = regexp.MustCompile(`ringd: pprof on (http://[\d.]+:\d+)`)

// TestDaemonPprofListener: -pprof serves the profiling endpoints on a
// separate listener, off the API port.
func TestDaemonPprofListener(t *testing.T) {
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-listen", "127.0.0.1:0", "-pprof", "127.0.0.1:0", "-log-every", "0"}, stdout, stderr, stop)
	}()
	var apiURL, pprofURL string
	deadline := time.Now().Add(10 * time.Second)
	for apiURL == "" || pprofURL == "" {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			apiURL = "http://" + m[1]
		}
		if m := pprofLine.FindStringSubmatch(stdout.String()); m != nil {
			pprofURL = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced both addresses; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(pprofURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof status %d, want 200", resp.StatusCode)
	}
	// The API listener must NOT expose the profiler.
	resp, err = http.Get(apiURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("api probe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("profiler leaked onto the serving mux")
	}
	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonBadFlags covers the usage-error exits.
func TestDaemonBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-crosscheck", "1.5"},
		{"trailing"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb, make(chan struct{})); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestDaemonListenFailure: an unbindable address must exit 1, not hang.
func TestDaemonListenFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-listen", "256.0.0.1:1"}, &out, &errb, make(chan struct{})); code != 1 {
		t.Errorf("exit %d, want 1; stderr=%q", code, errb.String())
	}
}
