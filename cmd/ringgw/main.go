// Command ringgw fronts a fleet of ringd replicas (internal/cluster):
// it terminates the same HTTP/JSON API ringd speaks — POST /v1/elect and
// /v1/classify, GET /healthz, /readyz and /metrics — plus, with
// -wire-addr, the RGV1 binary wire protocol, and proxies every election
// over pooled wire connections to whichever replica rendezvous hashing
// assigns the ring's canonical class. Per-replica liveness comes from
// probing each replica's /readyz with failure/recovery hysteresis;
// requests that outlive the hedge budget are raced against the
// next-ranked replica and the first answer wins.
//
// The fleet is named either inline,
//
//	ringgw -listen 127.0.0.1:9322 \
//	    -replicas r0=127.0.0.1:8323=http://127.0.0.1:8322,r1=127.0.0.1:8423=http://127.0.0.1:8422
//
// or from a JSON file of {"name", "wire_addr", "base_url"} objects:
//
//	ringgw -listen 127.0.0.1:9322 -roster fleet.json
//
// Replica names are rendezvous identities: renaming a replica reassigns
// its slice of the keyspace, so keep names stable across restarts.
//
// /metrics adds per-replica gauges and counters on top of the standard
// serving metrics: ringgw_replica_up, _routed_total, _hedged_total,
// _hedge_wins_total, _failed_total, and _latency_seconds quantiles.
//
// Shutdown mirrors ringd's drain discipline: /readyz flips to 503 so
// upstream balancers steer away, both frontends drain in flight work
// (the wire port flushes and half-closes each connection), and only then
// do the replica connections close.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/netring"
	"repro/internal/secure"
	"repro/internal/serve"
)

func main() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() { <-sigc; close(stop) }()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

// run is the testable body of main: it returns the exit code and shuts
// down gracefully when stop closes.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("ringgw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", "127.0.0.1:9322", "address to listen on (host:port; port 0 picks a free port)")
		wireAddr     = fs.String("wire-addr", "", "serve the RGV1 binary wire protocol on this address (empty disables)")
		replicasSpec = fs.String("replicas", "", "inline roster: comma-separated name=wireAddr=baseURL triples")
		rosterPath   = fs.String("roster", "", "JSON roster file (array of {name, wire_addr, base_url}); exclusive with -replicas")
		probeEvery   = fs.Duration("probe-every", 500*time.Millisecond, "replica /readyz probe interval")
		failAfter    = fs.Int("fail-after", 2, "consecutive failed probes before a replica is marked down")
		recoverAfter = fs.Int("recover-after", 2, "consecutive good probes before a down replica is marked up")
		poolConns    = fs.Int("pool-conns", 2, "pooled wire connections per replica")
		timeout      = fs.Duration("timeout", 5*time.Second, "per-replica attempt budget")
		hedgeAfter   = fs.Duration("hedge-after", 10*time.Millisecond, "hedge budget floor before latency history exists")
		hedgeMult    = fs.Float64("hedge-mult", 4, "hedge once a request has taken this many times the EWMA latency")
		maxAttempts  = fs.Int("max-attempts", 0, "max distinct replicas tried per request, hedges included (0 = whole roster)")
		maxRing      = fs.Int("max-ring", 4096, "largest accepted ring size")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request budget on the wire frontend")
		drainWait    = fs.Duration("drain-wait", 30*time.Second, "how long shutdown waits for in-flight requests")

		keyFile     = fs.String("keyfile", "", "gateway's ringsec private key file: dials replicas whose roster entries carry pub_key, and (with -wire-secure) accepts encrypted clients on the wire port")
		allowedKeys = fs.String("allowed-keys", "", "file of client public keys allowed on the secure wire port (requires -wire-secure); empty allows any authenticated client")
		wireSecure  = fs.Bool("wire-secure", false, "require the ringsec handshake on the gateway's own wire port (requires -keyfile)")
		rlRate      = fs.Float64("rate-limit", 0, "per-peer sustained requests/sec on the wire frontend (0 disables)")
		rlBurst     = fs.Int("rate-burst", 0, "per-peer burst allowance (0 = ceil of -rate-limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ringgw: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	var roster cluster.Roster
	var err error
	switch {
	case *replicasSpec != "" && *rosterPath != "":
		fmt.Fprintf(stderr, "ringgw: -replicas and -roster are exclusive\n")
		return 2
	case *replicasSpec != "":
		roster, err = cluster.ParseRoster(*replicasSpec)
	case *rosterPath != "":
		roster, err = cluster.LoadRoster(*rosterPath)
	default:
		fmt.Fprintf(stderr, "ringgw: a fleet is required: pass -replicas or -roster\n")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "ringgw: %v\n", err)
		return 2
	}

	var identity *secure.PrivateKey
	if *keyFile != "" {
		identity, err = secure.LoadKeyFile(*keyFile)
		if err != nil {
			fmt.Fprintf(stderr, "ringgw: %v\n", err)
			return 1
		}
	}
	if *wireSecure && identity == nil {
		fmt.Fprintf(stderr, "ringgw: -wire-secure requires -keyfile\n")
		return 2
	}
	if *allowedKeys != "" && !*wireSecure {
		fmt.Fprintf(stderr, "ringgw: -allowed-keys requires -wire-secure\n")
		return 2
	}

	logger := log.New(stderr, "ringgw: ", log.LstdFlags)
	health := cluster.StartHealth(roster, cluster.HealthConfig{
		Interval:     *probeEvery,
		FailAfter:    *failAfter,
		RecoverAfter: *recoverAfter,
		Logf:         logger.Printf,
	})
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Roster:          roster,
		Health:          health,
		PoolConns:       *poolConns,
		Timeout:         *timeout,
		Backoff:         netring.Backoff{}.WithDefaults(),
		HedgeAfter:      *hedgeAfter,
		HedgeMultiplier: *hedgeMult,
		MaxAttempts:     *maxAttempts,
		Identity:        identity,
		Logf:            logger.Printf,
	})
	if err != nil {
		health.Stop()
		fmt.Fprintf(stderr, "ringgw: %v\n", err)
		return 1
	}
	gw := cluster.NewGateway(cluster.GatewayConfig{
		Router:      router,
		MaxRingSize: *maxRing,
		Logf:        logger.Printf,
	})

	shutdown := func() {
		router.Close()
		health.Stop()
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "ringgw: %v\n", err)
		shutdown()
		return 1
	}
	fmt.Fprintf(stdout, "ringgw: listening on %s, fronting %d replicas\n", ln.Addr(), len(roster))
	// The wire frontend shares the gateway's router and metrics, so both
	// protocols see one liveness view and one routing table.
	var fe *serve.WireFrontend
	var wireErr chan error // nil (never ready) when the wire port is off
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(stderr, "ringgw: wire listener: %v\n", err)
			ln.Close()
			shutdown()
			return 1
		}
		feCfg := serve.WireFrontendConfig{
			MaxRingSize:    *maxRing,
			RequestTimeout: *reqTimeout,
			Metrics:        gw.Metrics(),
		}
		if *rlRate > 0 {
			feCfg.RateLimit = &serve.RateLimitConfig{Rate: *rlRate, Burst: *rlBurst}
		}
		if *wireSecure {
			feCfg.Secure = &secure.ServerConfig{Config: secure.Config{Identity: identity}}
			if *allowedKeys != "" {
				allowed, err := secure.LoadPeerKeys(*allowedKeys)
				if err != nil {
					fmt.Fprintf(stderr, "ringgw: %v\n", err)
					ln.Close()
					wln.Close()
					shutdown()
					return 1
				}
				feCfg.Secure.Allowed = allowed
			}
			fmt.Fprintf(stdout, "ringgw: wire listening on %s (ringsec, key %s)\n",
				wln.Addr(), identity.Public().ShortFingerprint())
		} else {
			fmt.Fprintf(stdout, "ringgw: wire listening on %s\n", wln.Addr())
		}
		fe = serve.NewWireFrontend(gw, feCfg)
		wireErr = make(chan error, 1)
		go func() { wireErr <- fe.Serve(wln) }()
	}
	hs := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	exit := 0
	select {
	case <-stop:
	case err := <-serveErr:
		logger.Printf("serve error: %v", err)
		shutdown()
		return 1
	case err := <-wireErr:
		logger.Printf("wire serve error: %v", err)
		shutdown()
		return 1
	}

	logger.Printf("shutting down: draining in-flight elections")
	// Readiness first: /readyz answers 503 and new elections get typed
	// 503s from this instant, while in-flight work finishes.
	gw.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		exit = 1
	}
	if fe != nil {
		if err := fe.Shutdown(ctx); err != nil {
			logger.Printf("wire shutdown: %v", err)
			exit = 1
		}
	}
	// Only after both frontends drain: tear down the replica connections
	// and the prober, so the last proxied election is never cut off.
	shutdown()
	for _, rs := range router.Stats() {
		logger.Printf("final: replica=%s up=%t routed=%d hedged=%d hedge_wins=%d failed=%d",
			rs.Name, rs.Up, rs.Routed, rs.Hedged, rs.HedgeWins, rs.Failed)
	}
	return exit
}
