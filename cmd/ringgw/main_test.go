package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/load"
	"repro/internal/secure"
	"repro/internal/serve"
)

// syncBuffer lets the daemon goroutine write stdout while the test
// polls it for the listen line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var (
	listenLine     = regexp.MustCompile(`ringgw: listening on ([\d.]+:\d+)`)
	wireListenLine = regexp.MustCompile(`ringgw: wire listening on ([\d.]+:\d+)`)
)

// startFleet boots n in-process replicas and returns them with their
// inline -replicas spec.
func startFleet(t *testing.T, n int) (*cluster.LocalFleet, string) {
	t.Helper()
	fleet, err := cluster.StartLocalFleet(n, serve.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Stop)
	parts := make([]string, len(fleet.Roster))
	for i, r := range fleet.Roster {
		parts[i] = fmt.Sprintf("%s=%s=%s", r.Name, r.WireAddr, r.BaseURL)
	}
	return fleet, strings.Join(parts, ",")
}

// startGateway runs the daemon against the fleet spec and returns its
// base URL, wire address (when enabled), and control channels.
func startGateway(t *testing.T, extra ...string) (string, string, chan struct{}, chan int, *syncBuffer) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	stop := make(chan struct{})
	exit := make(chan int, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-probe-every", "25ms"}, extra...)
	go func() { exit <- run(args, stdout, stderr, stop) }()

	wantWire := false
	for _, a := range extra {
		if a == "-wire-addr" {
			wantWire = true
		}
	}
	var baseURL, wireAddr string
	deadline := time.Now().Add(10 * time.Second)
	for baseURL == "" || (wantWire && wireAddr == "") {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			baseURL = "http://" + m[1]
		}
		if m := wireListenLine.FindStringSubmatch(stdout.String()); m != nil {
			wireAddr = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		select {
		case code := <-exit:
			t.Fatalf("gateway exited early with %d; stderr=%q", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return baseURL, wireAddr, stop, exit, stderr
}

// TestGatewayDaemonServesAndDrains is the daemon acceptance run: boot a
// two-replica fleet, front it with ringgw on both protocols, drive a
// seeded crosschecking mix over the wire port, check the HTTP API and
// per-replica metrics, then stop the daemon and require a graceful exit
// with final routing accounting.
func TestGatewayDaemonServesAndDrains(t *testing.T) {
	_, spec := startFleet(t, 2)
	baseURL, wireAddr, stop, exit, stderr := startGateway(t,
		"-replicas", spec, "-wire-addr", "127.0.0.1:0")

	for i := 0; i < 3; i++ {
		resp, err := http.Post(baseURL+"/v1/elect", "application/json",
			strings.NewReader(`{"ring":"1 3 1 3 2 2 1 2","alg":"B","k":3}`))
		if err != nil {
			t.Fatalf("elect %d: %v", i, err)
		}
		var out struct {
			Leader int  `json:"leader"`
			Cached bool `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("elect %d: decoding: %v", i, err)
		}
		resp.Body.Close()
		if out.Leader != 0 {
			t.Errorf("elect %d: leader %d, want 0", i, out.Leader)
		}
		if wantCached := i > 0; out.Cached != wantCached {
			t.Errorf("elect %d: cached=%t, want %t", i, out.Cached, wantCached)
		}
	}

	rep, err := load.Run(load.Config{
		BaseURL:    baseURL,
		Proto:      load.ProtoWire,
		WireAddr:   wireAddr,
		WireConns:  2,
		Requests:   80,
		Workers:    4,
		Seed:       7,
		Alg:        "B",
		K:          3,
		Crosscheck: 0.5,
	})
	if err != nil {
		t.Fatalf("wire load: %v", err)
	}
	if rep.OK != 80 || rep.TransportErrors != 0 {
		t.Errorf("wire run: ok=%d transport=%d, want 80/0", rep.OK, rep.TransportErrors)
	}
	if rep.Crosschecks == 0 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d, want >0 and 0", rep.Crosschecks, rep.Divergences)
	}

	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ringgw_replica_up{", "ringgw_replica_routed_total{"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %s:\n%s", want, body)
		}
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gateway did not shut down")
	}
	if s := stderr.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "final: replica=") {
		t.Errorf("shutdown log incomplete: %q", s)
	}
}

// TestGatewayDaemonRosterFile: the JSON roster file path boots the same
// fleet the inline spec does.
func TestGatewayDaemonRosterFile(t *testing.T) {
	fleet, _ := startFleet(t, 2)
	data, err := json.Marshal(fleet.Roster)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	baseURL, _, stop, exit, stderr := startGateway(t, "-roster", path)

	resp, err := http.Post(baseURL+"/v1/elect", "application/json",
		strings.NewReader(`{"ring":"1 3 1 3 2 2 1 2","alg":"B","k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("elect status %d, want 200", resp.StatusCode)
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gateway did not shut down")
	}
}

// startSecureFleet boots n keyed replicas and writes their roster —
// pub_key entries included — to a JSON file, the only roster form that
// can carry keys.
func startSecureFleet(t *testing.T, n int) (*cluster.LocalFleet, string) {
	t.Helper()
	fleet, err := cluster.StartSecureLocalFleet(n, serve.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Stop)
	data, err := json.Marshal(fleet.Roster)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return fleet, path
}

// TestGatewaySecureEndToEnd runs the fully hardened path: an encrypted
// client dials the gateway's -wire-secure port, and the gateway's own
// identity dials the keyed replicas — two independent ringsec hops, with
// the plaintext HTTP API still answering beside them. The seeded
// crosschecking mix must come back exactly as it does on a plaintext
// ladder: every request OK, zero divergences from the local simulator.
func TestGatewaySecureEndToEnd(t *testing.T) {
	_, rosterPath := startSecureFleet(t, 2)
	dir := t.TempDir()
	gwKey, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	clientKey, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	keyPath := filepath.Join(dir, "gw.key")
	if err := secure.WriteKeyFile(keyPath, gwKey); err != nil {
		t.Fatal(err)
	}
	allowedPath := filepath.Join(dir, "allowed.keys")
	if err := os.WriteFile(allowedPath, []byte(clientKey.Public().String()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	baseURL, wireAddr, stop, exit, stderr := startGateway(t,
		"-roster", rosterPath, "-keyfile", keyPath,
		"-wire-addr", "127.0.0.1:0", "-wire-secure", "-allowed-keys", allowedPath)

	rep, err := load.Run(load.Config{
		BaseURL:   baseURL,
		Proto:     load.ProtoWire,
		WireAddr:  wireAddr,
		WireConns: 2,
		WireSecure: &secure.ClientConfig{
			Config:    secure.Config{Identity: clientKey},
			ServerKey: gwKey.Public(),
		},
		Requests:   80,
		Workers:    4,
		Seed:       7,
		Alg:        "B",
		K:          3,
		Crosscheck: 0.5,
	})
	if err != nil {
		t.Fatalf("secure wire load: %v", err)
	}
	if rep.OK != 80 || rep.TransportErrors != 0 {
		t.Errorf("secure run: ok=%d transport=%d, want 80/0", rep.OK, rep.TransportErrors)
	}
	if rep.Crosschecks == 0 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d, want >0 and 0", rep.Crosschecks, rep.Divergences)
	}

	resp, err := http.Post(baseURL+"/v1/elect", "application/json",
		strings.NewReader(`{"ring":"1 3 1 3 2 2 1 2","alg":"B","k":3}`))
	if err != nil {
		t.Fatalf("http elect beside secure wire: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("http elect status %d, want 200", resp.StatusCode)
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, want 0; stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gateway did not shut down")
	}
}

// TestGatewaySecureRosterNeedsKeyfile: a roster with pub_key entries and
// no -keyfile is a misconfiguration the router rejects at construction —
// the daemon must exit 1 naming the missing flag, not boot a gateway
// that fails every dial.
func TestGatewaySecureRosterNeedsKeyfile(t *testing.T) {
	_, rosterPath := startSecureFleet(t, 1)
	var out, errb bytes.Buffer
	code := run([]string{"-roster", rosterPath, "-listen", "127.0.0.1:0"}, &out, &errb, make(chan struct{}))
	if code != 1 {
		t.Errorf("exit %d, want 1; stderr=%q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "keyfile") {
		t.Errorf("stderr %q does not name the missing -keyfile", errb.String())
	}
}

// TestGatewayDaemonBadFlags covers the usage-error exits.
func TestGatewayDaemonBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{},                  // no fleet at all
		{"-replicas", "r0"}, // malformed spec
		{"-roster", "/no/such/file.json"},
		{"-replicas", "r0=a=b", "-roster", "also.json"}, // exclusive
		{"-replicas", "r0=a=b", "trailing"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb, make(chan struct{})); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestGatewayDaemonListenFailure: an unbindable address must exit 1 and
// release the router/prober, not hang.
func TestGatewayDaemonListenFailure(t *testing.T) {
	_, spec := startFleet(t, 1)
	var out, errb bytes.Buffer
	if code := run([]string{"-replicas", spec, "-listen", "256.0.0.1:1"}, &out, &errb, make(chan struct{})); code != 1 {
		t.Errorf("exit %d, want 1; stderr=%q", code, errb.String())
	}
}
