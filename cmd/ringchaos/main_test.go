package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
)

// ringnodeBin is built once per test binary by TestMain; the CLI under
// test drives real ringnode processes.
var ringnodeBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ringchaosbin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ringnodeBin = filepath.Join(dir, "ringnode")
	build := exec.Command("go", "build", "-o", ringnodeBin, "repro/cmd/ringnode")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building ringnode:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-unknown-flag"},
		{"-seeds", "0"},
		{"-ring", "not a ring"},
		{"-algo", "zeus"},
		{"-schedule-json", filepath.Join(t.TempDir(), "missing.json")},
		{"-seeds", "2", "-dump", filepath.Join(t.TempDir(), "s.json")},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", args, code, errOut.String())
		}
	}
}

// TestDumpThenRunSchedule exercises the -dump / -schedule-json round
// trip: the dumped file is valid, and running it drives a real TCP ring
// to the simulator-verified result.
func TestDumpThenRunSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess chaos run")
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-ring", "1 2 2", "-algo", "bk", "-k", "2", "-seed", "5", "-dump", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("dump exited %d: %s", code, errOut.String())
	}
	s, err := chaos.LoadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 5 || s.Ring != "1 2 2" || len(s.Events) == 0 {
		t.Fatalf("dumped schedule looks wrong: %s", s)
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{"-schedule-json", path, "-ringnode", ringnodeBin, "-timeout", "60s", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("schedule run exited %d: %s", code, errOut.String())
	}
	var rep chaos.Report
	if err := json.Unmarshal(bytes.TrimSpace(out.Bytes()), &rep); err != nil {
		t.Fatalf("bad report %q: %v", out.String(), err)
	}
	if rep.LeaderIndex < 0 || rep.Messages <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Seed != 5 {
		t.Errorf("report echoes seed %d, want 5", rep.Seed)
	}
}

// TestGeneratedSeedRun is the CLI's happy path: generate and execute one
// seed on a small ring, emitting one JSON report line.
func TestGeneratedSeedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess chaos run")
	}
	var out, errOut bytes.Buffer
	code := run([]string{
		"-ring", "1 2 2", "-algo", "ak", "-k", "2",
		"-seed", "11", "-ringnode", ringnodeBin, "-timeout", "60s",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut.String())
	}
	var rep chaos.Report
	if err := json.Unmarshal(bytes.TrimSpace(out.Bytes()), &rep); err != nil {
		t.Fatalf("bad report %q: %v", out.String(), err)
	}
	if rep.SurvivedFaults[chaos.KindKill]+rep.SurvivedFaults[chaos.KindSlowRestart] < 1 {
		t.Errorf("generated schedule carried no kill: %+v", rep.SurvivedFaults)
	}
	if rep.SurvivedFaults[chaos.KindPartition] < 1 {
		t.Errorf("generated schedule carried no partition: %+v", rep.SurvivedFaults)
	}
}
