// Command ringchaos runs deterministic crash-recovery drills against a
// ring of real ringnode processes. It derives a fault schedule from a
// seed — SIGKILL+relaunch, transient partitions, link delay spikes —
// executes it on a freshly launched TCP ring behind pacing proxies, and
// checks the full specification afterwards: the election terminates,
// elects exactly the leader the in-memory simulator elects, sends exactly
// the simulator's message count (retransmits excluded), and no process
// dies with a violation. One JSON report per seed goes to stdout.
//
// Drill the paper's Figure 1 ring through twenty seeds:
//
//	ringchaos -ring "1 3 1 3 2 2 1 2" -algo ak -k 3 -seeds 20
//
// Every run is reproducible: a failure prints the seed and the exact
// schedule, and replaying the same -seed replays the identical schedule.
// Use -dump to write a schedule to JSON without running it, and
// -schedule-json to run a (possibly hand-edited) schedule file instead of
// generating one.
//
// With -secure the harness generates a keypair per node and runs the
// ring over authenticated encrypted links (ringsec). With -adversary
// (implies -secure) the generated schedules switch to ciphertext
// attacks — garbage injection, record replay, mid-record truncation,
// mid-handshake severs — plus the usual crash faults, and the same
// exact-match assertions must still hold:
//
//	ringchaos -ring "1 3 1 3 2 2 1 2" -algo ak -k 3 -adversary -seeds 20
//
// Exit codes: 0 all runs passed, 1 a run failed an assertion or a node
// died with a violation, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/chaos"

	repro "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		spc      = fs.String("ring", "1 3 1 3 2 2 1 2", "clockwise label sequence, as cmd/ringnode's -ring")
		algo     = fs.String("algo", "ak", "algorithm: ak, bk, astar, cr, peterson, knownn")
		k        = fs.Int("k", 3, "multiplicity bound known to the processes")
		seed     = fs.Int64("seed", 0, "first schedule seed")
		seeds    = fs.Int("seeds", 1, "number of consecutive seeds to run, starting at -seed")
		schedule = fs.String("schedule-json", "", "run this schedule file instead of generating one (overrides -ring/-algo/-k/-seed)")
		dump     = fs.String("dump", "", "write the generated schedule to this JSON file and exit without running")
		bin      = fs.String("ringnode", "", "path to the ringnode binary (default: $PATH lookup)")
		timeout  = fs.Duration("timeout", 90*time.Second, "per-run deadline")
		delay    = fs.Duration("base-delay", 3*time.Millisecond, "per-chunk link pacing that stretches the election so faults land mid-run")
		stateDir = fs.String("state-dir", "", "directory for the nodes' durable snapshots (default: a fresh temp dir per run)")
		secureFl = fs.Bool("secure", false, "run the ring over authenticated encrypted links (per-run generated keys)")
		advFl    = fs.Bool("adversary", false, "generate adversarial ciphertext-attack schedules (implies -secure)")
		verbose  = fs.Bool("v", false, "log fault firings and node restarts to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *seeds < 1 {
		fmt.Fprintln(stderr, "ringchaos: -seeds must be at least 1")
		return 2
	}

	// Fail fast on an unusable ring/algorithm before any process spawns.
	r, err := repro.ParseRing(*spc)
	if err != nil {
		fmt.Fprintln(stderr, "ringchaos:", err)
		return 2
	}
	if _, err := repro.ParseAlgorithm(*algo); err != nil {
		fmt.Fprintln(stderr, "ringchaos:", err)
		return 2
	}

	var schedules []chaos.Schedule
	switch {
	case *schedule != "":
		s, err := chaos.LoadSchedule(*schedule)
		if err != nil {
			fmt.Fprintln(stderr, "ringchaos:", err)
			return 2
		}
		schedules = []chaos.Schedule{*s}
	default:
		gen := chaos.Generate
		if *advFl {
			gen = chaos.GenerateAdversary
		}
		for i := 0; i < *seeds; i++ {
			schedules = append(schedules, gen(*seed+int64(i), *spc, *algo, *k, r.N()))
		}
	}
	if *advFl {
		*secureFl = true
	}
	for i := range schedules {
		if schedules[i].HasAdversary() && !*secureFl {
			fmt.Fprintln(stderr, "ringchaos: the schedule contains adversary events; pass -secure (or -adversary)")
			return 2
		}
	}

	if *dump != "" {
		if len(schedules) != 1 {
			fmt.Fprintln(stderr, "ringchaos: -dump writes exactly one schedule; use -seed without -seeds")
			return 2
		}
		if err := schedules[0].WriteFile(*dump); err != nil {
			fmt.Fprintln(stderr, "ringchaos:", err)
			return 1
		}
		fmt.Fprintf(stderr, "ringchaos: wrote schedule for seed %d to %s\n", schedules[0].Seed, *dump)
		return 0
	}

	ringnode := *bin
	if ringnode == "" {
		ringnode, err = exec.LookPath("ringnode")
		if err != nil {
			fmt.Fprintln(stderr, "ringchaos: no ringnode binary found in $PATH; build one with `go build ./cmd/ringnode` and pass -ringnode")
			return 2
		}
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stderr, "ringchaos: "+format+"\n", a...) }
	}

	enc := json.NewEncoder(stdout)
	failed := 0
	for i := range schedules {
		s := &schedules[i]
		rep, err := chaos.Run(s, chaos.Options{
			RingnodeBin: ringnode,
			StateDir:    *stateDir,
			Timeout:     *timeout,
			BaseDelay:   *delay,
			Secure:      *secureFl,
			Log:         logf,
		})
		if err != nil {
			fmt.Fprintln(stderr, "ringchaos:", err)
			failed++
			continue
		}
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "ringchaos:", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "ringchaos: %d of %d runs FAILED\n", failed, len(schedules))
		return 1
	}
	return 0
}
