package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/netring"
	"repro/internal/spec"
)

// freeAddrs reserves n loopback ports and frees them for the nodes to
// re-bind; the dial backoff absorbs the small startup race.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// nodeArgs builds the CLI for node i of an n-ring.
func nodeArgs(addrs []string, spec string, i int, algo string, k int) []string {
	return []string{
		"-listen", addrs[i],
		"-next", addrs[(i+1)%len(addrs)],
		"-ring", spec,
		"-index", fmt.Sprint(i),
		"-algo", algo,
		"-k", fmt.Sprint(k),
	}
}

// TestRingOfThreeInProcess drives three run() invocations that share
// nothing but TCP connections, covering the full binary logic.
func TestRingOfThreeInProcess(t *testing.T) {
	const spec = "1 2 2"
	addrs := freeAddrs(t, 3)
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, 3)
	errs := make([]bytes.Buffer, 3)
	codes := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = run(nodeArgs(addrs, spec, i, "bk", 2), &outs[i], &errs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if codes[i] != 0 {
			t.Fatalf("node %d: exit %d: %s", i, codes[i], errs[i].String())
		}
		if !strings.Contains(outs[i].String(), "leader label 1") {
			t.Errorf("node %d did not agree on leader label 1:\n%s", i, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "LEADER") {
		t.Errorf("p0 (the Lyndon position) must win:\n%s", outs[0].String())
	}
	for _, i := range []int{1, 2} {
		if !strings.Contains(outs[i].String(), "follower") {
			t.Errorf("p%d must be a follower:\n%s", i, outs[i].String())
		}
	}
}

// TestRingAcrossRealProcesses re-executes the test binary as genuinely
// separate OS processes (the E10 acceptance path: multi-process TCP
// election, started in arbitrary order).
func TestRingAcrossRealProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess ring")
	}
	const spec = "1 3 1 3 2 2 1 2"
	const n = 8
	addrs := freeAddrs(t, n)
	cmds := make([]*exec.Cmd, n)
	outs := make([]bytes.Buffer, n)
	// Start in reverse order so early dialers must back off and retry.
	for i := n - 1; i >= 0; i-- {
		args := append([]string{"-test.run=TestHelperRingnode", "--"}, nodeArgs(addrs, spec, i, "ak", 3)...)
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "RINGNODE_HELPER=1")
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("process %d failed: %v\n%s", i, err, outs[i].String())
		}
	}
	for i := 0; i < n; i++ {
		if !strings.Contains(outs[i].String(), "leader label 1") {
			t.Errorf("process %d disagrees on the leader:\n%s", i, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "LEADER") {
		t.Errorf("p0 must win on the Figure 1 ring:\n%s", outs[0].String())
	}
}

// TestSecureRingAcrossRealProcesses is the encrypted twin of
// TestRingAcrossRealProcesses: keys are generated through the -genkey
// CLI path, every process gets -keyfile/-peer-keys, and the 8-process
// election must agree on the same leader as the plaintext run — the
// transport must be invisible to the protocol.
func TestSecureRingAcrossRealProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess ring")
	}
	const spec = "1 3 1 3 2 2 1 2"
	const n = 8
	dir := t.TempDir()
	var roster strings.Builder
	keyFiles := make([]string, n)
	for i := 0; i < n; i++ {
		keyFiles[i] = filepath.Join(dir, fmt.Sprintf("node-%d.key", i))
		var pub, errBuf bytes.Buffer
		if code := run([]string{"-genkey", keyFiles[i]}, &pub, &errBuf); code != 0 {
			t.Fatalf("genkey %d: exit %d: %s", i, code, errBuf.String())
		}
		roster.WriteString(pub.String())
	}
	peersFile := filepath.Join(dir, "peers.keys")
	if err := os.WriteFile(peersFile, []byte(roster.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	addrs := freeAddrs(t, n)
	cmds := make([]*exec.Cmd, n)
	outs := make([]bytes.Buffer, n)
	for i := n - 1; i >= 0; i-- {
		args := append([]string{"-test.run=TestHelperRingnode", "--"}, nodeArgs(addrs, spec, i, "ak", 3)...)
		args = append(args, "-keyfile", keyFiles[i], "-peer-keys", peersFile)
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "RINGNODE_HELPER=1")
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("process %d failed: %v\n%s", i, err, outs[i].String())
		}
	}
	for i := 0; i < n; i++ {
		if !strings.Contains(outs[i].String(), "leader label 1") {
			t.Errorf("process %d disagrees on the leader:\n%s", i, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "LEADER") {
		t.Errorf("p0 must win on the Figure 1 ring:\n%s", outs[0].String())
	}
}

// TestSecureKeyMismatchFailsFast gives node 1 a roster that does not
// contain its own key: the process must refuse to start rather than
// join a ring it cannot authenticate to.
func TestSecureKeyMismatchFailsFast(t *testing.T) {
	dir := t.TempDir()
	var pub0, pub1, errBuf bytes.Buffer
	k0, k1 := filepath.Join(dir, "n0.key"), filepath.Join(dir, "n1.key")
	if code := run([]string{"-genkey", k0}, &pub0, &errBuf); code != 0 {
		t.Fatalf("genkey: %s", errBuf.String())
	}
	if code := run([]string{"-genkey", k1}, &pub1, &errBuf); code != 0 {
		t.Fatalf("genkey: %s", errBuf.String())
	}
	// A roster of two copies of node 0's key: node 1's key is absent.
	peers := filepath.Join(dir, "peers.keys")
	if err := os.WriteFile(peers, []byte(pub0.String()+pub0.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errs bytes.Buffer
	code := run([]string{"-listen", "127.0.0.1:0", "-next", "127.0.0.1:1", "-ring", "1 2", "-index", "1",
		"-keyfile", k1, "-peer-keys", peers}, &out, &errs)
	if code == 0 {
		t.Fatalf("node started with a roster missing its own key:\n%s", out.String())
	}
	if !strings.Contains(errs.String(), "-peer-keys") {
		t.Errorf("no roster diagnostic in: %s", errs.String())
	}
}

// TestHelperRingnode is not a test: it is the child body of
// TestRingAcrossRealProcesses, running one ringnode main.
func TestHelperRingnode(t *testing.T) {
	if os.Getenv("RINGNODE_HELPER") != "1" {
		t.Skip("helper process only")
	}
	code := run(flagArgs(), os.Stdout, os.Stderr)
	if code != 0 {
		os.Exit(code)
	}
}

// flagArgs returns the ringnode flags passed to the helper process after
// the "--" separator.
func flagArgs() []string {
	for i, a := range os.Args {
		if a == "--" {
			return os.Args[i+1:]
		}
	}
	return nil
}

// TestMismatchedRingFailsFast gives one node a different -ring: the
// handshake fingerprint must reject the connection instead of running an
// inconsistent election.
func TestMismatchedRingFailsFast(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	var out0, err0, out1, err1 bytes.Buffer
	var code0, code1 int
	wg.Add(2)
	go func() {
		defer wg.Done()
		code0 = run([]string{"-listen", addrs[0], "-next", addrs[1], "-ring", "1 2", "-index", "0",
			"-algo", "ak", "-k", "2", "-timeout", "3s"}, &out0, &err0)
	}()
	go func() {
		defer wg.Done()
		code1 = run([]string{"-listen", addrs[1], "-next", addrs[0], "-ring", "1 3", "-index", "1",
			"-algo", "ak", "-k", "2", "-timeout", "3s"}, &out1, &err1)
	}()
	wg.Wait()
	if code0 == 0 && code1 == 0 {
		t.Fatalf("mismatched rings must not elect:\np0: %s\np1: %s", out0.String(), out1.String())
	}
	combined := err0.String() + err1.String()
	if !strings.Contains(combined, "ring mismatch") {
		t.Errorf("no ring-mismatch diagnostic in:\n%s", combined)
	}
}

// TestFlagValidation covers the usage errors.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no flags", nil},
		{"missing next", []string{"-listen", ":0", "-ring", "1 2", "-index", "0"}},
		{"bad ring", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 q", "-index", "0"}},
		{"index out of range", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 2", "-index", "5"}},
		{"bad algorithm", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 2", "-index", "0", "-algo", "zap"}},
		{"symmetric ring", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 2 1 2", "-index", "0"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if code := run(c.args, &out, &errBuf); code == 0 {
				t.Errorf("args %v: expected non-zero exit", c.args)
			}
		})
	}
}

// nodeArgsDurable is nodeArgs plus crash-recovery and JSON output flags.
func nodeArgsDurable(addrs []string, spec string, i int, algo string, k int, dir string) []string {
	return append(nodeArgs(addrs, spec, i, algo, k),
		"-state-dir", dir, "-json")
}

// runDurableRing drives one full in-process durable election and returns
// the parsed -json reports.
func runDurableRing(t *testing.T, spec string, n int, dir string) []nodeReport {
	t.Helper()
	addrs := freeAddrs(t, n)
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, n)
	errs := make([]bytes.Buffer, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = run(nodeArgsDurable(addrs, spec, i, "bk", 2, dir), &outs[i], &errs[i])
		}(i)
	}
	wg.Wait()
	reports := make([]nodeReport, n)
	for i := 0; i < n; i++ {
		if codes[i] != 0 {
			t.Fatalf("node %d: exit %d: %s", i, codes[i], errs[i].String())
		}
		if err := json.Unmarshal(outs[i].Bytes(), &reports[i]); err != nil {
			t.Fatalf("node %d: bad -json output %q: %v", i, outs[i].String(), err)
		}
	}
	return reports
}

// TestDurableJSONAndIdempotentRestart elects with -state-dir and -json,
// then re-runs every node from its snapshot: the second run must report
// recovered, change nothing, and agree on the same leader.
func TestDurableJSONAndIdempotentRestart(t *testing.T) {
	dir := t.TempDir()
	first := runDurableRing(t, "1 2 2", 3, dir)
	leaders := 0
	for _, rep := range first {
		if rep.Leader {
			leaders++
		}
		if !rep.Halted || rep.LeaderLabel != "1" {
			t.Errorf("first run report %+v", rep)
		}
		if rep.Recovered {
			t.Errorf("fresh run must not report recovered: %+v", rep)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders", leaders)
	}
	second := runDurableRing(t, "1 2 2", 3, dir)
	for i, rep := range second {
		if !rep.Recovered {
			t.Errorf("node %d restart did not recover: %+v", i, rep)
		}
		if rep.Sent != first[i].Sent || rep.Leader != first[i].Leader {
			t.Errorf("node %d restart diverged: %+v vs %+v", i, rep, first[i])
		}
	}
}

// TestCorruptStateDirStartsClean plants garbage where node 0's snapshot
// would live: the node must detect it, start clean, and elect normally.
func TestCorruptStateDirStartsClean(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "node-0.state"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	reports := runDurableRing(t, "1 2 2", 3, dir)
	if reports[0].Recovered {
		t.Errorf("corrupt snapshot must not count as recovery: %+v", reports[0])
	}
	if !reports[0].Leader || reports[0].LeaderLabel != "1" {
		t.Errorf("election after corrupt snapshot: %+v", reports[0])
	}
}

// TestExitCodeMapping pins the documented exit codes for each failure
// class.
func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("p0: %w", netring.ErrTimeout), 3},
		{fmt.Errorf("p0: %w", &netring.DialError{Addr: "x:1", Attempts: 3, Last: errors.New("refused")}), 4},
		{fmt.Errorf("p0: %w", &spec.LinkViolation{From: 0, To: 1, Detail: "gap"}), 5},
		{fmt.Errorf("p0: %w", &spec.Violation{Bullet: 1, Detail: "two leaders"}), 5},
		{errors.New("anything else"), 1},
	}
	for _, c := range cases {
		if got := exitCodeFor(c.err); got != c.want {
			t.Errorf("exitCodeFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestExitCodeTimeout runs a node whose successor accepts and instantly
// drops every connection: the election cannot proceed and the node must
// exit 3 once -timeout fires.
func TestExitCodeTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	self := freeAddrs(t, 1)[0]
	var out, errBuf bytes.Buffer
	code := run([]string{"-listen", self, "-next", ln.Addr().String(), "-ring", "1 2", "-index", "0",
		"-algo", "ak", "-k", "2", "-timeout", "1s"}, &out, &errBuf)
	if code != 3 {
		t.Fatalf("exit %d, want 3 (timeout): %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "timed out") {
		t.Errorf("no timeout diagnostic: %s", errBuf.String())
	}
}

// TestExitCodeUnreachable points a node at a port nothing listens on: the
// dial retry budget must run out and surface exit 4 with the address.
func TestExitCodeUnreachable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the full dial retry budget takes ~10s")
	}
	dead := freeAddrs(t, 1)[0]
	self := freeAddrs(t, 1)[0]
	var out, errBuf bytes.Buffer
	code := run([]string{"-listen", self, "-next", dead, "-ring", "1 2", "-index", "0",
		"-algo", "ak", "-k", "2", "-timeout", "1m"}, &out, &errBuf)
	if code != 4 {
		t.Fatalf("exit %d, want 4 (unreachable): %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), dead) {
		t.Errorf("give-up diagnostic must carry the address %s: %s", dead, errBuf.String())
	}
}
