package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
)

// freeAddrs reserves n loopback ports and frees them for the nodes to
// re-bind; the dial backoff absorbs the small startup race.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// nodeArgs builds the CLI for node i of an n-ring.
func nodeArgs(addrs []string, spec string, i int, algo string, k int) []string {
	return []string{
		"-listen", addrs[i],
		"-next", addrs[(i+1)%len(addrs)],
		"-ring", spec,
		"-index", fmt.Sprint(i),
		"-algo", algo,
		"-k", fmt.Sprint(k),
	}
}

// TestRingOfThreeInProcess drives three run() invocations that share
// nothing but TCP connections, covering the full binary logic.
func TestRingOfThreeInProcess(t *testing.T) {
	const spec = "1 2 2"
	addrs := freeAddrs(t, 3)
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, 3)
	errs := make([]bytes.Buffer, 3)
	codes := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = run(nodeArgs(addrs, spec, i, "bk", 2), &outs[i], &errs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if codes[i] != 0 {
			t.Fatalf("node %d: exit %d: %s", i, codes[i], errs[i].String())
		}
		if !strings.Contains(outs[i].String(), "leader label 1") {
			t.Errorf("node %d did not agree on leader label 1:\n%s", i, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "LEADER") {
		t.Errorf("p0 (the Lyndon position) must win:\n%s", outs[0].String())
	}
	for _, i := range []int{1, 2} {
		if !strings.Contains(outs[i].String(), "follower") {
			t.Errorf("p%d must be a follower:\n%s", i, outs[i].String())
		}
	}
}

// TestRingAcrossRealProcesses re-executes the test binary as genuinely
// separate OS processes (the E10 acceptance path: multi-process TCP
// election, started in arbitrary order).
func TestRingAcrossRealProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess ring")
	}
	const spec = "1 3 1 3 2 2 1 2"
	const n = 8
	addrs := freeAddrs(t, n)
	cmds := make([]*exec.Cmd, n)
	outs := make([]bytes.Buffer, n)
	// Start in reverse order so early dialers must back off and retry.
	for i := n - 1; i >= 0; i-- {
		args := append([]string{"-test.run=TestHelperRingnode", "--"}, nodeArgs(addrs, spec, i, "ak", 3)...)
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "RINGNODE_HELPER=1")
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("process %d failed: %v\n%s", i, err, outs[i].String())
		}
	}
	for i := 0; i < n; i++ {
		if !strings.Contains(outs[i].String(), "leader label 1") {
			t.Errorf("process %d disagrees on the leader:\n%s", i, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "LEADER") {
		t.Errorf("p0 must win on the Figure 1 ring:\n%s", outs[0].String())
	}
}

// TestHelperRingnode is not a test: it is the child body of
// TestRingAcrossRealProcesses, running one ringnode main.
func TestHelperRingnode(t *testing.T) {
	if os.Getenv("RINGNODE_HELPER") != "1" {
		t.Skip("helper process only")
	}
	code := run(flagArgs(), os.Stdout, os.Stderr)
	if code != 0 {
		os.Exit(code)
	}
}

// flagArgs returns the ringnode flags passed to the helper process after
// the "--" separator.
func flagArgs() []string {
	for i, a := range os.Args {
		if a == "--" {
			return os.Args[i+1:]
		}
	}
	return nil
}

// TestMismatchedRingFailsFast gives one node a different -ring: the
// handshake fingerprint must reject the connection instead of running an
// inconsistent election.
func TestMismatchedRingFailsFast(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	var out0, err0, out1, err1 bytes.Buffer
	var code0, code1 int
	wg.Add(2)
	go func() {
		defer wg.Done()
		code0 = run([]string{"-listen", addrs[0], "-next", addrs[1], "-ring", "1 2", "-index", "0",
			"-algo", "ak", "-k", "2", "-timeout", "3s"}, &out0, &err0)
	}()
	go func() {
		defer wg.Done()
		code1 = run([]string{"-listen", addrs[1], "-next", addrs[0], "-ring", "1 3", "-index", "1",
			"-algo", "ak", "-k", "2", "-timeout", "3s"}, &out1, &err1)
	}()
	wg.Wait()
	if code0 == 0 && code1 == 0 {
		t.Fatalf("mismatched rings must not elect:\np0: %s\np1: %s", out0.String(), out1.String())
	}
	combined := err0.String() + err1.String()
	if !strings.Contains(combined, "ring mismatch") {
		t.Errorf("no ring-mismatch diagnostic in:\n%s", combined)
	}
}

// TestFlagValidation covers the usage errors.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no flags", nil},
		{"missing next", []string{"-listen", ":0", "-ring", "1 2", "-index", "0"}},
		{"bad ring", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 q", "-index", "0"}},
		{"index out of range", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 2", "-index", "5"}},
		{"bad algorithm", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 2", "-index", "0", "-algo", "zap"}},
		{"symmetric ring", []string{"-listen", ":0", "-next", "x:1", "-ring", "1 2 1 2", "-index", "0"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if code := run(c.args, &out, &errBuf); code == 0 {
				t.Errorf("args %v: expected non-zero exit", c.args)
			}
		})
	}
}
