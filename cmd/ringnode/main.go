// Command ringnode runs ONE process of a distributed leader election over
// real TCP: each invocation is one ring node that listens for its
// predecessor, dials its successor, and runs the chosen algorithm until
// the election terminates. Start n of them — in different terminals,
// containers, or hosts — with the same -ring and consecutive -index
// values, and the ring elects exactly as the in-memory engines do.
//
// A three-node ring on one machine:
//
//	ringnode -listen :7001 -next 127.0.0.1:7002 -ring "1 2 2" -index 0 -algo bk -k 2
//	ringnode -listen :7002 -next 127.0.0.1:7003 -ring "1 2 2" -index 1 -algo bk -k 2
//	ringnode -listen :7003 -next 127.0.0.1:7001 -ring "1 2 2" -index 2 -algo bk -k 2
//
// Nodes may start in any order: the dialer retries with exponential
// backoff until its successor's listener is up. The handshake carries a
// fingerprint of the ring, so mismatched -ring configurations across
// nodes fail fast instead of electing inconsistently. Algorithms: ak, bk,
// astar (the paper's), cr, peterson, knownn (baselines).
//
// With -state-dir the node becomes crash-recoverable: it snapshots its
// protocol state and link cursors to <dir>/node-<index>.state after every
// step, and a relaunched node (same flags) resumes the election exactly
// where the kill left it — the predecessor retransmits anything un-acked,
// and retransmissions are excluded from the message counts.
//
// Exit codes (scripts and the chaos harness branch on them):
//
//	0  election terminated and this node's spec checks passed
//	1  configuration or runtime error
//	2  usage error (bad flags)
//	3  timed out before the election terminated
//	4  successor unreachable through the whole retry budget
//	5  specification violation (broken link axiom or status regression)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netring"
	"repro/internal/secure"
	"repro/internal/spec"
	"repro/internal/trace"

	repro "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen  = fs.String("listen", "", "TCP address to listen on for the predecessor, e.g. :7001")
		next    = fs.String("next", "", "successor's listen address, e.g. host:7002")
		spc     = fs.String("ring", "", "clockwise label sequence shared by all nodes, e.g. \"1 3 1 3 2 2 1 2\"")
		index   = fs.Int("index", -1, "this node's position in the ring (0-based)")
		algo    = fs.String("algo", "ak", "algorithm: "+strings.Join(repro.AlgorithmNames(), ", "))
		k       = fs.Int("k", 2, "multiplicity bound known to the processes")
		timeout = fs.Duration("timeout", time.Minute, "abort if the election has not terminated in time")
		verbose = fs.Bool("v", false, "log every delivered message and link event")

		stateDir = fs.String("state-dir", "", "directory for the durable state snapshot; enables crash recovery (relaunch with identical flags to resume)")
		fsync    = fs.Bool("fsync", false, "fsync each state snapshot before the atomic rename (survive machine crashes, not just process kills)")
		jsonOut  = fs.Bool("json", false, "print the final result as one JSON object on stdout")

		keyFile  = fs.String("keyfile", "", "this node's ringsec private key file; with -peer-keys, runs both ring links over authenticated encryption")
		peerKeys = fs.String("peer-keys", "", "roster of all nodes' public keys, one base64 key per line in ring-index order (required with -keyfile)")
		genKey   = fs.String("genkey", "", "generate a fresh private key, write it to the given path, print the public key, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *genKey != "" {
		key, err := secure.GenerateKey()
		if err != nil {
			fmt.Fprintln(stderr, "ringnode:", err)
			return 1
		}
		if err := secure.WriteKeyFile(*genKey, key); err != nil {
			fmt.Fprintln(stderr, "ringnode:", err)
			return 1
		}
		fmt.Fprintln(stdout, key.Public().String())
		return 0
	}
	if *listen == "" || *next == "" || *spc == "" || *index < 0 {
		fmt.Fprintln(stderr, "ringnode: -listen, -next, -ring and -index are required (see -help)")
		return 2
	}
	r, err := repro.ParseRing(*spc)
	if err != nil {
		fmt.Fprintln(stderr, "ringnode:", err)
		return 1
	}
	if *index >= r.N() {
		fmt.Fprintf(stderr, "ringnode: -index %d outside ring of %d processes\n", *index, r.N())
		return 1
	}
	alg, err := repro.ParseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintln(stderr, "ringnode:", err)
		return 1
	}
	p, err := repro.ProtocolFor(r, alg, *k)
	if err != nil {
		fmt.Fprintln(stderr, "ringnode:", err)
		return 1
	}
	var identity *secure.PrivateKey
	var roster []secure.PublicKey
	if (*keyFile == "") != (*peerKeys == "") {
		fmt.Fprintln(stderr, "ringnode: -keyfile and -peer-keys must be set together")
		return 2
	}
	if *keyFile != "" {
		identity, err = secure.LoadKeyFile(*keyFile)
		if err != nil {
			fmt.Fprintln(stderr, "ringnode:", err)
			return 1
		}
		roster, err = secure.LoadPeerKeys(*peerKeys)
		if err != nil {
			fmt.Fprintln(stderr, "ringnode:", err)
			return 1
		}
		if len(roster) != r.N() {
			fmt.Fprintf(stderr, "ringnode: -peer-keys has %d keys for a ring of %d\n", len(roster), r.N())
			return 1
		}
		if !roster[*index].Equal(identity.Public()) {
			fmt.Fprintf(stderr, "ringnode: -keyfile's public key is not entry %d of -peer-keys\n", *index)
			return 1
		}
	}

	if !*jsonOut {
		fmt.Fprintf(stdout, "ringnode: p%d (label %s) of %s: listening on %s, successor at %s, algorithm %s\n",
			*index, r.Label(*index), r, *listen, *next, p.Name())
	}

	// Node-local spec checking: every action's status must stay monotone
	// (the cross-process bullets need a global observer; RunLocal and the
	// in-memory engines cover those).
	checker := spec.New(r.N())
	onAction := func(proc int, op trace.Op, action string, msg core.Message, sent []core.Message, m core.Machine) error {
		if *verbose && op == trace.OpDeliver {
			fmt.Fprintf(stdout, "ringnode: p%d rcv %s %s -> %s\n", proc, msg, action, m.StateName())
		}
		return checker.Observe(proc, m.Status())
	}
	onLink := func(proc int, event string) {
		if *verbose {
			fmt.Fprintf(stdout, "ringnode: p%d outgoing link: %s\n", proc, event)
		}
	}

	statePath := ""
	if *stateDir != "" {
		statePath = filepath.Join(*stateDir, fmt.Sprintf("node-%d.state", *index))
	}
	// On recovery the checker must not treat the restored status as a
	// fresh transition (a restored leader is the same leader, not a
	// second election).
	onRecover := func(proc int, m core.Machine) {
		checker.Seed(proc, m.Status())
		if *verbose {
			fmt.Fprintf(stdout, "ringnode: p%d restored state %s from %s\n", proc, m.StateName(), statePath)
		}
	}

	res, err := netring.RunNode(netring.NodeConfig{
		Ring:       r,
		Index:      *index,
		Protocol:   p,
		ListenAddr: *listen,
		NextAddr:   *next,
		Timeout:    *timeout,
		OnAction:   onAction,
		OnLink:     onLink,
		StatePath:  statePath,
		Fsync:      *fsync,
		OnRecover:  onRecover,
		Identity:   identity,
		PeerKeys:   roster,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ringnode:", err)
		return exitCodeFor(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		if err := enc.Encode(nodeReport{
			Index: res.Index, Leader: res.Status.IsLeader, LeaderLabel: res.Status.Leader.String(),
			Sent: res.Sent, Reconnects: res.Reconnects, Retransmits: res.Retransmits,
			Recovered: res.Recovered, Halted: res.Halted,
		}); err != nil {
			fmt.Fprintln(stderr, "ringnode:", err)
			return 1
		}
	} else {
		role := "follower"
		if res.Status.IsLeader {
			role = "LEADER"
		}
		fmt.Fprintf(stdout, "ringnode: p%d done: %s, leader label %s, sent %d messages, %d reconnects, %d retransmits, peak space %d bits\n",
			res.Index, role, res.Status.Leader, res.Sent, res.Reconnects, res.Retransmits, res.PeakSpaceBits)
	}
	if !res.Status.Done || !res.Halted {
		fmt.Fprintf(stderr, "ringnode: p%d terminated without done/halt\n", res.Index)
		return 1
	}
	return 0
}

// nodeReport is the -json result object, one line on stdout.
type nodeReport struct {
	Index       int    `json:"index"`
	Leader      bool   `json:"leader"`
	LeaderLabel string `json:"leader_label"`
	Sent        int    `json:"sent"`
	Reconnects  int    `json:"reconnects"`
	Retransmits int    `json:"retransmits"`
	Recovered   bool   `json:"recovered"`
	Halted      bool   `json:"halted"`
}

// exitCodeFor maps a failed run to the documented exit codes, so callers
// (and internal/chaos) can tell a hung election from a dead successor
// from a correctness breach without parsing messages.
func exitCodeFor(err error) int {
	var de *netring.DialError
	var v *spec.Violation
	var lv *spec.LinkViolation
	switch {
	case errors.Is(err, netring.ErrTimeout):
		return 3
	case errors.As(err, &de):
		return 4
	case errors.As(err, &v), errors.As(err, &lv):
		return 5
	default:
		return 1
	}
}
