// Command ringelect runs one leader election on a ring given on the
// command line and reports the outcome and cost.
//
// Usage:
//
//	ringelect -ring "1 3 1 3 2 2 1 2" -alg B -k 3
//	ringelect -ring "1 2 2" -alg A -k 2 -engine goroutines
//	ringelect -n 32 -distinct -alg CR            # generated ring
//	ringelect -ring "5 1 4 2 3" -alg A -k 1 -engine sync -trace
//
// Algorithms: A (paper Table 1), B (paper Table 2), Astar, CR
// (Chang–Roberts), Peterson, KnownN, IR (randomized Itai–Rodeh; elects on
// symmetric rings too). Engines: unit (default; asynchronous
// with unit delays), sync (the paper's synchronous execution), random
// (asynchronous with random delays), goroutines (real parallelism), tcp
// (one OS-level node per process over loopback sockets; see cmd/ringnode
// for rings spanning real processes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"

	repro "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringelect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		spec     = fs.String("ring", "", "clockwise label sequence, e.g. \"1 3 1 3 2 2 1 2\"")
		n        = fs.Int("n", 0, "generate a ring of n processes instead of -ring")
		distinct = fs.Bool("distinct", false, "with -n: distinct labels 1..n")
		seed     = fs.Int64("seed", 1, "with -n and not -distinct: random asymmetric ring seed")
		alpha    = fs.Int("alpha", 4, "with -n random rings: alphabet size")
		algName  = fs.String("alg", "A", "algorithm: "+strings.Join(repro.AlgorithmNames(), ", "))
		k        = fs.Int("k", 2, "multiplicity bound known to the processes")
		engine   = fs.String("engine", "unit", "engine: unit, sync, random, goroutines, tcp")
		jsonOut  = fs.Bool("json", false, "emit the outcome as a single JSON object instead of text")
		doTrace  = fs.Bool("trace", false, "print every send/deliver event (sync/unit/random engines)")
		record   = fs.String("record", "", "write the event trace as JSON to this file (golden trace)")
		replay   = fs.String("replay", "", "compare this run's event trace against a golden trace file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	r, err := buildRing(*spec, *n, *distinct, *seed, *k, *alpha)
	if err != nil {
		fmt.Fprintln(stderr, "ringelect:", err)
		return 1
	}
	alg, err := repro.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintln(stderr, "ringelect:", err)
		return 1
	}

	if !*jsonOut {
		fmt.Fprintf(stdout, "ring:    %s  (n=%d, max multiplicity %d, asymmetric=%t, unique label=%t, b=%d bits)\n",
			r, r.N(), r.MaxMultiplicity(), r.IsAsymmetric(), r.HasUniqueLabel(), r.LabelBits())
		if tl, ok := r.TrueLeader(); ok {
			fmt.Fprintf(stdout, "true leader: p%d (label %s; counter-clockwise sequence is the Lyndon rotation)\n", tl, r.Label(tl))
		}
	}

	switch *engine {
	case "goroutines":
		out, err := repro.ElectParallel(r, alg, *k, time.Minute)
		if err != nil {
			fmt.Fprintln(stderr, "ringelect:", err)
			return 1
		}
		if *jsonOut {
			return emitJSON(stdout, stderr, jsonFromOutcome(r, alg, *k, *engine, out))
		}
		fmt.Fprintf(stdout, "elected: p%d (label %s) with %d messages (%d payload bits) [goroutine engine]\n", out.Leader, out.LeaderLabel, out.Messages, out.TotalBits)
		return 0
	case "tcp":
		out, err := repro.RunTCP(r, alg, *k, time.Minute)
		if err != nil {
			fmt.Fprintln(stderr, "ringelect:", err)
			return 1
		}
		if *jsonOut {
			return emitJSON(stdout, stderr, jsonFromOutcome(r, alg, *k, *engine, out))
		}
		fmt.Fprintf(stdout, "elected: p%d (label %s) with %d messages (%d payload bits) [tcp engine]\n", out.Leader, out.LeaderLabel, out.Messages, out.TotalBits)
		return 0
	}

	p, err := repro.ProtocolFor(r, alg, *k)
	if err != nil {
		fmt.Fprintln(stderr, "ringelect:", err)
		return 1
	}
	var sink trace.Sink = trace.Nop{}
	var mem *trace.Mem
	if *doTrace || *record != "" || *replay != "" {
		mem = &trace.Mem{}
		sink = mem
	}
	var res *sim.Result
	switch *engine {
	case "sync":
		res, err = sim.RunSync(r, p, sim.Options{Sink: sink})
	case "unit":
		res, err = sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{Sink: sink})
	case "random":
		res, err = sim.RunAsync(r, p, sim.NewUniformDelay(*seed, 0.01), sim.Options{Sink: sink})
	default:
		fmt.Fprintf(stderr, "ringelect: unknown engine %q (want unit, sync, random, goroutines, tcp)\n", *engine)
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, "ringelect:", err)
		return 1
	}
	if *doTrace && !*jsonOut {
		for _, e := range mem.Events {
			printEvent(stdout, e)
		}
	}
	if *record != "" {
		data, err := trace.Marshal(mem.Events)
		if err != nil {
			fmt.Fprintln(stderr, "ringelect:", err)
			return 1
		}
		if err := os.WriteFile(*record, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "ringelect:", err)
			return 1
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "recorded %d events to %s\n", len(mem.Events), *record)
		}
	}
	if *replay != "" {
		data, err := os.ReadFile(*replay)
		if err != nil {
			fmt.Fprintln(stderr, "ringelect:", err)
			return 1
		}
		golden, err := trace.Unmarshal(data)
		if err != nil {
			fmt.Fprintln(stderr, "ringelect:", err)
			return 1
		}
		if d := trace.Diff(golden, mem.Events); d != "" {
			fmt.Fprintf(stderr, "ringelect: golden trace mismatch: %s\n", d)
			return 1
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "replay matches golden trace %s (%d events)\n", *replay, len(golden))
		}
	}
	if *jsonOut {
		return emitJSON(stdout, stderr, jsonFromOutcome(r, alg, *k, *engine, &repro.Outcome{
			Leader:        res.LeaderIndex,
			LeaderLabel:   r.Label(res.LeaderIndex),
			TimeUnits:     res.TimeUnits,
			Messages:      res.Messages,
			TotalBits:     res.TotalBits,
			PeakSpaceBits: res.PeakSpaceBits,
		}))
	}
	fmt.Fprintf(stdout, "elected: p%d (label %s)\n", res.LeaderIndex, r.Label(res.LeaderIndex))
	fmt.Fprintf(stdout, "cost:    time %.0f units, %d messages (%d payload bits), peak space %d bits/process, %d actions, max link depth %d\n",
		res.TimeUnits, res.Messages, res.TotalBits, res.PeakSpaceBits, res.Actions, res.MaxLinkDepth)
	return 0
}

// jsonOutcome is the -json wire shape: one flat object per run, the
// machine-readable sibling of the two-line text report.
type jsonOutcome struct {
	Ring          string  `json:"ring"`
	N             int     `json:"n"`
	Alg           string  `json:"alg"`
	K             int     `json:"k"`
	Engine        string  `json:"engine"`
	Leader        int     `json:"leader"`
	LeaderLabel   string  `json:"leader_label"`
	TrueLeader    int     `json:"true_leader"` // -1 when the ring is symmetric
	Messages      int     `json:"messages"`
	TotalBits     int     `json:"total_bits"`
	TimeUnits     float64 `json:"time_units,omitempty"`
	PeakSpaceBits int     `json:"peak_space_bits,omitempty"`
}

func jsonFromOutcome(r *ring.Ring, alg repro.Algorithm, k int, engine string, out *repro.Outcome) jsonOutcome {
	labels := r.Labels()
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.String()
	}
	tl := -1
	if idx, ok := r.TrueLeader(); ok {
		tl = idx
	}
	return jsonOutcome{
		Ring:          strings.Join(parts, " "),
		N:             r.N(),
		Alg:           alg.String(),
		K:             k,
		Engine:        engine,
		Leader:        out.Leader,
		LeaderLabel:   out.LeaderLabel.String(),
		TrueLeader:    tl,
		Messages:      out.Messages,
		TotalBits:     out.TotalBits,
		TimeUnits:     out.TimeUnits,
		PeakSpaceBits: out.PeakSpaceBits,
	}
}

func emitJSON(stdout, stderr io.Writer, jo jsonOutcome) int {
	enc := json.NewEncoder(stdout)
	if err := enc.Encode(jo); err != nil {
		fmt.Fprintln(stderr, "ringelect:", err)
		return 1
	}
	return 0
}

func buildRing(spec string, n int, distinct bool, seed int64, k, alpha int) (*ring.Ring, error) {
	switch {
	case spec != "":
		return ring.Parse(spec)
	case n > 0 && distinct:
		return ring.Distinct(n), nil
	case n > 0:
		return repro.RandomRing(seed, n, k, alpha)
	default:
		return nil, fmt.Errorf("provide -ring or -n (see -help)")
	}
}

func printEvent(w io.Writer, e trace.Event) {
	switch e.Op {
	case trace.OpInit:
		fmt.Fprintf(w, "t=%7.2f  p%-3d %-4s -> state %s\n", e.Time, e.Proc, e.Action, e.State)
	case trace.OpDeliver:
		fmt.Fprintf(w, "t=%7.2f  p%-3d rcv %-14s %-4s -> state %s\n", e.Time, e.Proc, e.Msg, e.Action, e.State)
	case trace.OpSend:
		fmt.Fprintf(w, "t=%7.2f  p%-3d send %s\n", e.Time, e.Proc, e.Msg)
	case trace.OpHalt:
		fmt.Fprintf(w, "t=%7.2f  p%-3d halt\n", e.Time, e.Proc)
	case trace.OpPhase:
		fmt.Fprintf(w, "t=%7.2f  p%-3d enters phase %d (guest=%s, active=%t)\n", e.Time, e.Proc, e.Phase, e.Guest, e.Active)
	}
}
