package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestElectFigure1Ring(t *testing.T) {
	out, _, code := runCLI(t, "-ring", "1 3 1 3 2 2 1 2", "-alg", "B", "-k", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, frag := range []string{"max multiplicity 3", "true leader: p0", "elected: p0 (label 1)", "276 messages"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestAllAlgorithmsAndEngines(t *testing.T) {
	algs := []string{"A", "B", "Astar", "KnownN"}
	engines := []string{"unit", "sync", "random", "goroutines", "tcp"}
	for _, alg := range algs {
		for _, engine := range engines {
			out, errOut, code := runCLI(t, "-ring", "1 2 2", "-alg", alg, "-k", "2", "-engine", engine)
			if code != 0 {
				t.Fatalf("alg=%s engine=%s: exit %d (%s)", alg, engine, code, errOut)
			}
			if !strings.Contains(out, "elected: p0") {
				t.Errorf("alg=%s engine=%s: wrong leader:\n%s", alg, engine, out)
			}
		}
	}
}

func TestBaselinesOnDistinct(t *testing.T) {
	for _, alg := range []string{"CR", "Peterson"} {
		out, errOut, code := runCLI(t, "-n", "8", "-distinct", "-alg", alg, "-k", "1")
		if code != 0 {
			t.Fatalf("%s: exit %d (%s)", alg, code, errOut)
		}
		if !strings.Contains(out, "elected: p") {
			t.Errorf("%s: no election reported:\n%s", alg, out)
		}
	}
}

func TestGeneratedRandomRing(t *testing.T) {
	out, errOut, code := runCLI(t, "-n", "12", "-seed", "3", "-alg", "A", "-k", "3", "-alpha", "6")
	if code != 0 {
		t.Fatalf("exit %d (%s)", code, errOut)
	}
	if !strings.Contains(out, "n=12") {
		t.Errorf("output missing ring info:\n%s", out)
	}
}

func TestTraceOutput(t *testing.T) {
	out, _, code := runCLI(t, "-ring", "1 2", "-alg", "A", "-k", "1", "-engine", "sync", "-trace")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, frag := range []string{"A1", "send ⟨", "rcv", "halt"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q:\n%s", frag, out)
		}
	}
}

func TestRecordAndReplay(t *testing.T) {
	golden := t.TempDir() + "/trace.json"
	out, errOut, code := runCLI(t, "-ring", "1 2 2", "-alg", "B", "-k", "2", "-engine", "sync", "-record", golden)
	if code != 0 {
		t.Fatalf("record: exit %d (%s)", code, errOut)
	}
	if !strings.Contains(out, "recorded") {
		t.Fatalf("no record confirmation:\n%s", out)
	}
	// Same run replays cleanly.
	out, errOut, code = runCLI(t, "-ring", "1 2 2", "-alg", "B", "-k", "2", "-engine", "sync", "-replay", golden)
	if code != 0 || !strings.Contains(out, "replay matches") {
		t.Fatalf("replay: exit %d out=%q err=%q", code, out, errOut)
	}
	// A different ring must be flagged.
	_, errOut, code = runCLI(t, "-ring", "2 1 2", "-alg", "B", "-k", "2", "-engine", "sync", "-replay", golden)
	if code == 0 || !strings.Contains(errOut, "mismatch") {
		t.Fatalf("divergent replay not flagged: exit %d err=%q", code, errOut)
	}
	// Missing golden file errors cleanly.
	if _, _, code := runCLI(t, "-ring", "1 2 2", "-alg", "B", "-k", "2", "-replay", golden+".missing"); code == 0 {
		t.Error("missing golden file must fail")
	}
}

// TestJSONOutput: -json must emit exactly one JSON object on stdout —
// no text report mixed in — across engines and ring sources.
func TestJSONOutput(t *testing.T) {
	type want struct {
		ring       string
		n          int
		alg        string
		leader     int
		label      string
		trueLeader int
		messages   int // 0 = don't check
	}
	cases := []struct {
		name string
		args []string
		want want
	}{
		{
			"figure1 unit engine",
			[]string{"-ring", "1 3 1 3 2 2 1 2", "-alg", "B", "-k", "3", "-json"},
			want{ring: "1 3 1 3 2 2 1 2", n: 8, alg: "Bk", leader: 0, label: "1", trueLeader: 0, messages: 276},
		},
		{
			"goroutine engine",
			[]string{"-ring", "1 2 2", "-alg", "A", "-k", "2", "-engine", "goroutines", "-json"},
			want{ring: "1 2 2", n: 3, alg: "Ak", leader: 0, label: "1", trueLeader: 0},
		},
		{
			"sync engine",
			[]string{"-ring", "1 2 2", "-alg", "Astar", "-k", "2", "-engine", "sync", "-json"},
			want{ring: "1 2 2", n: 3, alg: "A*", leader: 0, label: "1", trueLeader: 0},
		},
		{
			"distinct labels baseline",
			[]string{"-n", "5", "-distinct", "-alg", "CR", "-k", "1", "-json"},
			want{ring: "1 2 3 4 5", n: 5, alg: "ChangRoberts", leader: 0, label: "1", trueLeader: 0},
		},
		{
			"json suppresses trace text",
			[]string{"-ring", "1 2", "-alg", "A", "-k", "1", "-engine", "sync", "-trace", "-json"},
			want{ring: "1 2", n: 2, alg: "Ak", leader: 0, label: "1", trueLeader: 0},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, errOut, code := runCLI(t, c.args...)
			if code != 0 {
				t.Fatalf("exit %d (%s)", code, errOut)
			}
			var got struct {
				Ring        string  `json:"ring"`
				N           int     `json:"n"`
				Alg         string  `json:"alg"`
				K           int     `json:"k"`
				Engine      string  `json:"engine"`
				Leader      int     `json:"leader"`
				LeaderLabel string  `json:"leader_label"`
				TrueLeader  int     `json:"true_leader"`
				Messages    int     `json:"messages"`
				TimeUnits   float64 `json:"time_units"`
			}
			// Exactly one JSON object: the whole stdout must decode, and a
			// second decode must hit EOF.
			dec := json.NewDecoder(strings.NewReader(out))
			if err := dec.Decode(&got); err != nil {
				t.Fatalf("stdout is not a JSON object: %v\n%s", err, out)
			}
			if dec.More() {
				t.Errorf("stdout holds more than one JSON value:\n%s", out)
			}
			if got.Ring != c.want.ring || got.N != c.want.n || got.Alg != c.want.alg {
				t.Errorf("ring/n/alg = %q/%d/%q, want %q/%d/%q", got.Ring, got.N, got.Alg, c.want.ring, c.want.n, c.want.alg)
			}
			if got.Leader != c.want.leader || got.LeaderLabel != c.want.label || got.TrueLeader != c.want.trueLeader {
				t.Errorf("leader/label/true = %d/%q/%d, want %d/%q/%d",
					got.Leader, got.LeaderLabel, got.TrueLeader, c.want.leader, c.want.label, c.want.trueLeader)
			}
			if c.want.messages != 0 && got.Messages != c.want.messages {
				t.Errorf("messages = %d, want %d", got.Messages, c.want.messages)
			}
			if got.Messages <= 0 {
				t.Errorf("messages = %d, want positive", got.Messages)
			}
		})
	}
}

// TestErrorPaths checks every invalid flag combination exits non-zero AND
// leaves a diagnostic the user can act on.
func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // fragment that must appear on stderr
	}{
		{"no ring", nil, "provide -ring or -n"},
		{"bad label", []string{"-ring", "1 x"}, "x"},
		{"bad algorithm", []string{"-ring", "1 2", "-alg", "nope"}, `unknown algorithm "nope"`},
		{"bad engine", []string{"-ring", "1 2", "-engine", "warp"}, `unknown engine "warp"`},
		{"bad engine lists options", []string{"-ring", "1 2", "-engine", "warp"}, "tcp"},
		{"symmetric ring", []string{"-ring", "1 2 1 2", "-alg", "A"}, "symmetric"},
		{"multiplicity above k", []string{"-ring", "1 1 2", "-alg", "A", "-k", "1"}, "multiplicity"},
		{"homonyms for CR", []string{"-ring", "1 1 2", "-alg", "CR"}, "unique labels"},
		{"symmetric ring on tcp", []string{"-ring", "1 2 1 2", "-alg", "A", "-engine", "tcp"}, "symmetric"},
		{"undefined flag", []string{"-zap"}, "-zap"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, errOut, code := runCLI(t, c.args...)
			if code == 0 {
				t.Fatalf("args %v: expected non-zero exit", c.args)
			}
			if !strings.Contains(errOut, c.want) {
				t.Errorf("args %v: stderr missing %q:\n%s", c.args, c.want, errOut)
			}
		})
	}
}
