package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const reportA = `{
  "schema": "ringbench/bench/v1",
  "seed": 1, "quick": true, "par": 1, "total_wall_ms": 100,
  "experiments": [
    {"id": "E4", "title": "t", "wall_ms": 80, "header": ["a"], "rows": [["1"]], "notes": ["n"]},
    {"id": "E5", "title": "t", "wall_ms": 20, "header": ["a"], "rows": [["2"]], "notes": []}
  ]
}`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `"wall_ms": 80`, `"wall_ms": 40`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("missing speedup column:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Errorf("content not flagged identical:\n%s", out.String())
	}
}

func TestContentDriftFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `[["1"]]`, `[["999"]]`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (content drift): %s", code, out.String())
	}
	if !strings.Contains(out.String(), "DIFFERS") {
		t.Errorf("drift not reported:\n%s", out.String())
	}
}

func TestIncomparableSeeds(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `"seed": 1`, `"seed": 2`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUsage(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
