package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const reportA = `{
  "schema": "ringbench/bench/v1",
  "seed": 1, "quick": true, "par": 1, "total_wall_ms": 100,
  "experiments": [
    {"id": "E4", "title": "t", "wall_ms": 80, "header": ["a"], "rows": [["1"]], "notes": ["n"]},
    {"id": "E5", "title": "t", "wall_ms": 20, "header": ["a"], "rows": [["2"]], "notes": []}
  ]
}`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `"wall_ms": 80`, `"wall_ms": 40`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("missing speedup column:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Errorf("content not flagged identical:\n%s", out.String())
	}
}

func TestContentDriftFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `[["1"]]`, `[["999"]]`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (content drift): %s", code, out.String())
	}
	if !strings.Contains(out.String(), "DIFFERS") {
		t.Errorf("drift not reported:\n%s", out.String())
	}
}

// TestDisjointExperimentSetsFail pins the missing-experiment behavior:
// an experiment present in only one report is a content difference, never
// a silent skip — two fully disjoint reports must fail loudly.
func TestDisjointExperimentSetsFail(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.NewReplacer("E4", "E7", "E5", "E6").Replace(reportA))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (disjoint sets are drift):\n%s", code, out.String())
	}
	for _, frag := range []string{"E6", "E7", "only in new report", "only in old report"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
	// Old-only rows must come out sorted regardless of map order.
	if e4, e5 := strings.Index(out.String(), "E4"), strings.Index(out.String(), "E5"); e4 > e5 {
		t.Errorf("old-only experiments not sorted:\n%s", out.String())
	}
}

func TestMissingExperimentFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	trimmed := strings.ReplaceAll(reportA,
		`,
    {"id": "E5", "title": "t", "wall_ms": 20, "header": ["a"], "rows": [["2"]], "notes": []}`, "")
	b := write(t, dir, "b.json", trimmed)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (dropped experiment):\n%s%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "only in old report") {
		t.Errorf("dropped experiment not reported explicitly:\n%s", out.String())
	}
}

func TestEngineMismatchIncomparable(t *testing.T) {
	dir := t.TempDir()
	withEngine := func(e string) string {
		return strings.ReplaceAll(reportA, `"par": 1,`, `"par": 1, "engine": "`+e+`",`)
	}
	a := write(t, dir, "a.json", withEngine("sim+goroutines"))
	b := write(t, dir, "b.json", withEngine("sim+goroutines+tcp"))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2 (engine rosters differ)", code)
	}
	if !strings.Contains(errBuf.String(), "engines differ") {
		t.Errorf("no engine diagnostic:\n%s", errBuf.String())
	}
	// A pre-engine-field baseline stays comparable with any engine roster.
	old := write(t, dir, "old.json", reportA)
	cur := write(t, dir, "cur.json", withEngine("sim+goroutines+tcp"))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{old, cur}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (old baseline without engine field): %s", code, errBuf.String())
	}
}

func TestIncomparableSeeds(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `"seed": 1`, `"seed": 2`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUsage(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// withServe splices a serve_bench section into the reportA fixture.
func withServe(section string) string {
	return strings.ReplaceAll(reportA, `"total_wall_ms": 100,`,
		`"total_wall_ms": 100, "serve_bench": `+section+`,`)
}

const serveSectionOld = `{
  "gomaxprocs": 8,
  "benchmarks": [
    {"name": "ServeHit", "ns_per_op": 900, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "ServeMiss", "ns_per_op": 1700, "bytes_per_op": 272, "allocs_per_op": 4}
  ]
}`

func TestServeBenchIdentical(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withServe(serveSectionOld))
	b := write(t, dir, "b.json", withServe(serveSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errBuf.String(), out.String())
	}
	for _, frag := range []string{"ServeHit", "ServeMiss", "ok", "gomaxprocs 8"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("serve table missing %q:\n%s", frag, out.String())
		}
	}
}

// TestServeBenchTolerance: a regression inside -serve-tol passes; past it
// fails; an improvement always passes.
func TestServeBenchTolerance(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withServe(serveSectionOld))
	slower := strings.ReplaceAll(serveSectionOld, `"ns_per_op": 900`, `"ns_per_op": 1300`)
	b := write(t, dir, "b.json", withServe(slower))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 { // 1300 <= 900*1.5
		t.Fatalf("exit %d, want 0 (within default tolerance):\n%s", code, out.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "0.1", a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (past -serve-tol 0.1):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("regression not flagged:\n%s", out.String())
	}
	faster := strings.ReplaceAll(serveSectionOld, `"ns_per_op": 900`, `"ns_per_op": 200`)
	c := write(t, dir, "c.json", withServe(faster))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "0", a, c}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (improvements never fail):\n%s", code, out.String())
	}
}

// TestServeBenchAllocRegression: an allocation-free benchmark that starts
// allocating fails regardless of tolerance.
func TestServeBenchAllocRegression(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withServe(serveSectionOld))
	allocs := strings.ReplaceAll(serveSectionOld,
		`{"name": "ServeHit", "ns_per_op": 900, "bytes_per_op": 0, "allocs_per_op": 0}`,
		`{"name": "ServeHit", "ns_per_op": 900, "bytes_per_op": 64, "allocs_per_op": 2}`)
	b := write(t, dir, "b.json", withServe(allocs))
	var out, errBuf bytes.Buffer
	if code := run([]string{"-serve-tol", "100", a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (alloc regression):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ALLOCS") {
		t.Errorf("alloc regression not flagged:\n%s", out.String())
	}
}

// TestServeBenchSectionDrift: a serve_bench section — or a benchmark —
// present in only one report is explicit drift, never silently skipped.
func TestServeBenchSectionDrift(t *testing.T) {
	dir := t.TempDir()
	plain := write(t, dir, "plain.json", reportA)
	served := write(t, dir, "served.json", withServe(serveSectionOld))
	for _, tc := range [][2]string{{plain, served}, {served, plain}} {
		var out, errBuf bytes.Buffer
		if code := run([]string{tc[0], tc[1]}, nil, &out, &errBuf); code != 1 {
			t.Fatalf("exit %d, want 1 (section in only one report):\n%s", code, out.String())
		}
		if !strings.Contains(out.String(), "serve_bench: only in") {
			t.Errorf("section drift not explicit:\n%s", out.String())
		}
	}
	oneBench := strings.ReplaceAll(serveSectionOld,
		`,
    {"name": "ServeMiss", "ns_per_op": 1700, "bytes_per_op": 272, "allocs_per_op": 4}`, "")
	trimmed := write(t, dir, "trimmed.json", withServe(oneBench))
	var out, errBuf bytes.Buffer
	if code := run([]string{served, trimmed}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (benchmark in only one report):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "only in old report") {
		t.Errorf("dropped benchmark not reported:\n%s", out.String())
	}
}

func TestServeBenchGomaxprocsMismatch(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withServe(serveSectionOld))
	b := write(t, dir, "b.json", withServe(strings.ReplaceAll(serveSectionOld, `"gomaxprocs": 8`, `"gomaxprocs": 4`)))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (GOMAXPROCS mismatch):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "not comparable") {
		t.Errorf("mismatch not explained:\n%s", out.String())
	}
}

// TestMergeServe: `go test -bench` output on stdin lands in the report's
// serve_bench section, and the merged file round-trips through compare.
func TestMergeServe(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "r.json", reportA)
	benchOut := `goos: linux
goarch: amd64
pkg: repro/internal/serve
BenchmarkServeHit-8              1254979               923.4 ns/op             0 B/op          0 allocs/op
BenchmarkServeHitGlobalMutex-8    271828              4416 ns/op            1536 B/op         10 allocs/op
BenchmarkServeMiss-8              688491              1743 ns/op             272 B/op          4 allocs/op
PASS
ok      repro/internal/serve    5.1s
`
	var out, errBuf bytes.Buffer
	if code := run([]string{"-merge-serve", path}, strings.NewReader(benchOut), &out, &errBuf); code != 0 {
		t.Fatalf("merge exit %d: %s", code, errBuf.String())
	}
	merged, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ServeBench == nil || merged.ServeBench.GOMAXPROCS != 8 {
		t.Fatalf("serve_bench not merged: %+v", merged.ServeBench)
	}
	if n := len(merged.ServeBench.Benchmarks); n != 3 {
		t.Fatalf("merged %d benchmarks, want 3", n)
	}
	hit := merged.ServeBench.Benchmarks[0]
	if hit.Name != "ServeHit" || hit.NsPerOp != 923.4 || hit.BytesPerOp != 0 || hit.AllocsPerOp != 0 {
		t.Errorf("ServeHit parsed as %+v", hit)
	}
	mutex := merged.ServeBench.Benchmarks[1]
	if mutex.Name != "ServeHitGlobalMutex" || mutex.NsPerOp != 4416 || mutex.AllocsPerOp != 10 {
		t.Errorf("ServeHitGlobalMutex parsed as %+v", mutex)
	}
	// The experiments must survive the rewrite untouched.
	if len(merged.Experiments) != 2 {
		t.Errorf("experiments clobbered by merge: %d", len(merged.Experiments))
	}
	// Merged report compares clean against itself.
	out.Reset()
	errBuf.Reset()
	if code := run([]string{path, path}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("self-compare after merge: exit %d:\n%s", code, out.String())
	}
}

// TestMergeServeErrors: no benchmark lines and positional args are usage
// errors.
func TestMergeServeErrors(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "r.json", reportA)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-merge-serve", path}, strings.NewReader("PASS\nok\n"), &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2 (no benchmark lines)", code)
	}
	errBuf.Reset()
	if code := run([]string{"-merge-serve", path, "extra.json"}, strings.NewReader(""), &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2 (positional args with -merge-serve)", code)
	}
}

// withWire splices a wire_bench section into the reportA fixture.
func withWire(section string) string {
	return strings.ReplaceAll(reportA, `"total_wall_ms": 100,`,
		`"total_wall_ms": 100, "wire_bench": `+section+`,`)
}

const wireSectionOld = `{
  "gomaxprocs": 8,
  "benchmarks": [
    {"name": "WireHit", "ns_per_op": 1500, "bytes_per_op": 1, "allocs_per_op": 0},
    {"name": "HTTPHit", "ns_per_op": 33000, "bytes_per_op": 10000, "allocs_per_op": 57}
  ]
}`

// TestMergeWire: -merge-wire lands benchmark output in wire_bench,
// leaving serve_bench and the experiments untouched.
func TestMergeWire(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "r.json", withServe(serveSectionOld))
	benchOut := `BenchmarkWireHit-8    761904    1513 ns/op    1 B/op    0 allocs/op
BenchmarkHTTPHit-8     35502   33766 ns/op  10059 B/op   57 allocs/op
PASS
`
	var out, errBuf bytes.Buffer
	if code := run([]string{"-merge-wire", path}, strings.NewReader(benchOut), &out, &errBuf); code != 0 {
		t.Fatalf("merge exit %d: %s", code, errBuf.String())
	}
	merged, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if merged.WireBench == nil || len(merged.WireBench.Benchmarks) != 2 || merged.WireBench.GOMAXPROCS != 8 {
		t.Fatalf("wire_bench not merged: %+v", merged.WireBench)
	}
	if merged.ServeBench == nil || len(merged.ServeBench.Benchmarks) != 2 {
		t.Errorf("serve_bench clobbered by -merge-wire: %+v", merged.ServeBench)
	}
	if hit := merged.WireBench.Benchmarks[0]; hit.Name != "WireHit" || hit.NsPerOp != 1513 || hit.AllocsPerOp != 0 {
		t.Errorf("WireHit parsed as %+v", hit)
	}
	if len(merged.Experiments) != 2 {
		t.Errorf("experiments clobbered by merge: %d", len(merged.Experiments))
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{path, path}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("self-compare after -merge-wire: exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "wire ratio:") {
		t.Errorf("ratio line missing from compare:\n%s", out.String())
	}
}

// TestMergeFlagsExclusive: both merge flags at once is a usage error.
func TestMergeFlagsExclusive(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "r.json", reportA)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-merge-serve", path, "-merge-wire", path}, strings.NewReader("BenchmarkX 1 1 ns/op\n"), &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2 (mutually exclusive merge flags)", code)
	}
}

// TestWireRatioFloor: the new report's HTTPHit/WireHit ratio must stay
// at or above -wire-ratio; a wire path that has slowed down to within
// 5x of HTTP fails even when each benchmark individually moved less
// than -serve-tol would allow.
func TestWireRatioFloor(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withWire(wireSectionOld))
	b := write(t, dir, "b.json", withWire(wireSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 { // 22x >= 5x
		t.Fatalf("exit %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "wire ratio:") || !strings.Contains(out.String(), "ok") {
		t.Errorf("ratio verdict missing:\n%s", out.String())
	}
	// Ratio floor violated: WireHit crept up to a quarter of HTTPHit.
	slow := strings.ReplaceAll(wireSectionOld, `"ns_per_op": 1500`, `"ns_per_op": 8250`)
	c := write(t, dir, "c.json", withWire(slow))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", a, c}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (4x is below the 5x floor):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BELOW FLOOR") {
		t.Errorf("floor violation not flagged:\n%s", out.String())
	}
	// -wire-ratio 0 disables the floor (drift rules still apply).
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", "-wire-ratio", "0", a, c}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (-wire-ratio 0 disables the floor):\n%s", code, out.String())
	}
}

// TestWireBenchDrift: wire_bench follows the same section/alloc drift
// rules as serve_bench — a section in only one report fails, and an
// allocation-free WireHit must stay allocation-free.
func TestWireBenchDrift(t *testing.T) {
	dir := t.TempDir()
	plain := write(t, dir, "plain.json", reportA)
	wired := write(t, dir, "wired.json", withWire(wireSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{plain, wired}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (wire_bench in only one report):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "wire_bench: only in new report") {
		t.Errorf("section drift not explicit:\n%s", out.String())
	}
	allocs := strings.ReplaceAll(wireSectionOld,
		`{"name": "WireHit", "ns_per_op": 1500, "bytes_per_op": 1, "allocs_per_op": 0}`,
		`{"name": "WireHit", "ns_per_op": 1500, "bytes_per_op": 64, "allocs_per_op": 1}`)
	leaky := write(t, dir, "leaky.json", withWire(allocs))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{wired, leaky}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (WireHit started allocating):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ALLOCS") {
		t.Errorf("alloc regression not flagged:\n%s", out.String())
	}
}

// withCluster splices a cluster_bench section into the reportA fixture.
func withCluster(section string) string {
	return strings.ReplaceAll(reportA, `"total_wall_ms": 100,`,
		`"total_wall_ms": 100, "cluster_bench": `+section+`,`)
}

const clusterSectionOld = `{
  "gomaxprocs": 8,
  "benchmarks": [
    {"name": "ClusterElect/replicas=1", "ns_per_op": 40000, "bytes_per_op": 9000, "allocs_per_op": 120},
    {"name": "ClusterElect/replicas=2", "ns_per_op": 22000, "bytes_per_op": 9000, "allocs_per_op": 120},
    {"name": "ClusterElect/replicas=4", "ns_per_op": 13000, "bytes_per_op": 9000, "allocs_per_op": 120}
  ]
}`

// TestMergeCluster: -merge-cluster lands the replica ladder in
// cluster_bench — sub-benchmark names intact — leaving the other
// sections untouched.
func TestMergeCluster(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "r.json", withServe(serveSectionOld))
	benchOut := `BenchmarkClusterElect/replicas=1-8    28914    41519 ns/op    9123 B/op   121 allocs/op
BenchmarkClusterElect/replicas=2-8    53163    22583 ns/op    9088 B/op   120 allocs/op
BenchmarkClusterElect/replicas=4-8    90622    13249 ns/op    9101 B/op   120 allocs/op
PASS
`
	var out, errBuf bytes.Buffer
	if code := run([]string{"-merge-cluster", path}, strings.NewReader(benchOut), &out, &errBuf); code != 0 {
		t.Fatalf("merge exit %d: %s", code, errBuf.String())
	}
	merged, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ClusterBench == nil || len(merged.ClusterBench.Benchmarks) != 3 || merged.ClusterBench.GOMAXPROCS != 8 {
		t.Fatalf("cluster_bench not merged: %+v", merged.ClusterBench)
	}
	if one := merged.ClusterBench.Benchmarks[0]; one.Name != "ClusterElect/replicas=1" || one.NsPerOp != 41519 {
		t.Errorf("ladder rung parsed as %+v", one)
	}
	if merged.ServeBench == nil || len(merged.ServeBench.Benchmarks) != 2 {
		t.Errorf("serve_bench clobbered by -merge-cluster: %+v", merged.ServeBench)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{path, path}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("self-compare after -merge-cluster: exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "cluster scale:") {
		t.Errorf("scale verdict missing from compare:\n%s", out.String())
	}
}

// TestClusterScaleFloor: the new report's replicas=1 -> replicas=2
// speedup must reach -cluster-scale when the section ran multi-core; a
// flat ladder fails even when each rung individually sits inside
// -serve-tol.
func TestClusterScaleFloor(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withCluster(clusterSectionOld))
	b := write(t, dir, "b.json", withCluster(clusterSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 { // 1.82x >= 1.6x
		t.Fatalf("exit %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "cluster scale:") || !strings.Contains(out.String(), "ok") {
		t.Errorf("scale verdict missing:\n%s", out.String())
	}
	// Floor violated: the second replica stopped paying for itself.
	flat := strings.ReplaceAll(clusterSectionOld,
		`"name": "ClusterElect/replicas=2", "ns_per_op": 22000`,
		`"name": "ClusterElect/replicas=2", "ns_per_op": 36000`)
	c := write(t, dir, "c.json", withCluster(flat))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", a, c}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (1.11x is below the 1.6x floor):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BELOW FLOOR") {
		t.Errorf("floor violation not flagged:\n%s", out.String())
	}
	// -cluster-scale 0 disables the floor.
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", "-cluster-scale", "0", a, c}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (-cluster-scale 0 disables the floor):\n%s", code, out.String())
	}
}

// TestClusterScaleSkipsSingleCore: a ladder recorded under GOMAXPROCS 1
// cannot scale and must be skipped with an explicit note — not failed,
// not silently passed over.
func TestClusterScaleSkipsSingleCore(t *testing.T) {
	dir := t.TempDir()
	narrow := strings.ReplaceAll(clusterSectionOld, `"gomaxprocs": 8`, `"gomaxprocs": 1`)
	flat := strings.ReplaceAll(narrow,
		`"name": "ClusterElect/replicas=2", "ns_per_op": 22000`,
		`"name": "ClusterElect/replicas=2", "ns_per_op": 41000`)
	a := write(t, dir, "a.json", withCluster(flat))
	b := write(t, dir, "b.json", withCluster(flat))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (single-core ladder is skipped):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "cluster scale: skipped") {
		t.Errorf("skip not announced:\n%s", out.String())
	}
}

// TestClusterBenchDrift: cluster_bench follows the same section drift
// rules as the other sections.
func TestClusterBenchDrift(t *testing.T) {
	dir := t.TempDir()
	plain := write(t, dir, "plain.json", reportA)
	clustered := write(t, dir, "clustered.json", withCluster(clusterSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{clustered, plain}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (cluster_bench vanished):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "cluster_bench: only in old report") {
		t.Errorf("section drift not explicit:\n%s", out.String())
	}
}

// reportWithAlgs builds a report carrying an algorithms roster.
const reportAlgs = `{
  "schema": "ringbench/bench/v1",
  "seed": 1, "quick": true, "par": 1, "total_wall_ms": 100,
  "algorithms": [
    {"name": "Bk", "ring": "1 3 1 3 2 2 1 2", "k": 3, "leader": 4, "messages": 276, "total_bits": 1380},
    {"name": "ItaiRodeh", "ring": "3 3 3 3 3 3", "k": 3, "leader": 2, "messages": 60, "total_bits": 600}
  ],
  "experiments": [
    {"id": "E4", "title": "t", "wall_ms": 80, "header": ["a"], "rows": [["1"]], "notes": ["n"]}
  ]
}`

// TestAlgorithmsIdentical: matching rosters with matching reference
// elections compare clean.
func TestAlgorithmsIdentical(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportAlgs)
	b := write(t, dir, "b.json", reportAlgs)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errBuf.String(), out.String())
	}
	if !strings.Contains(out.String(), "ItaiRodeh") {
		t.Errorf("roster not printed:\n%s", out.String())
	}
}

// TestAlgorithmMissingIsDrift pins the issue's rule: an algorithm
// present in only one report is drift — here the baseline predates the
// randomized engine, so its roster lacks ItaiRodeh.
func TestAlgorithmMissingIsDrift(t *testing.T) {
	dir := t.TempDir()
	old := strings.Replace(reportAlgs,
		`,
    {"name": "ItaiRodeh", "ring": "3 3 3 3 3 3", "k": 3, "leader": 2, "messages": 60, "total_bits": 600}`,
		"", 1)
	a := write(t, dir, "a.json", old)
	b := write(t, dir, "b.json", reportAlgs)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (missing algorithm): %s", code, out.String())
	}
	if !strings.Contains(out.String(), "only in new report") {
		t.Errorf("missing algorithm not reported:\n%s", out.String())
	}
	// Symmetric direction: an algorithm that vanished is equally drift.
	if code := run([]string{b, a}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (vanished algorithm)", code)
	}
}

// TestAlgorithmBitDriftFails: a changed reference bit count — the
// accounting moved under an unchanged protocol name — is drift.
func TestAlgorithmBitDriftFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportAlgs)
	b := write(t, dir, "b.json", strings.Replace(reportAlgs, `"total_bits": 1380`, `"total_bits": 1381`, 1))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (bit drift): %s", code, out.String())
	}
	if !strings.Contains(out.String(), "DIFFERS") {
		t.Errorf("bit drift not reported:\n%s", out.String())
	}
}

func withMiss(section string) string {
	return strings.ReplaceAll(reportA, `"total_wall_ms": 100,`,
		`"total_wall_ms": 100, "miss_bench": `+section+`,`)
}

const missSectionOld = `{
  "gomaxprocs": 1,
  "benchmarks": [
    {"name": "ServeMissKernel", "ns_per_op": 67000, "bytes_per_op": 64, "allocs_per_op": 1},
    {"name": "ServeMissLegacy", "ns_per_op": 150000, "bytes_per_op": 46978, "allocs_per_op": 311}
  ]
}`

// TestMergeMiss: -merge-miss lands the before/after pair in miss_bench,
// leaving the other sections untouched, and a self-compare of the merged
// report prints both kernel floor verdicts.
func TestMergeMiss(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "r.json", withServe(serveSectionOld))
	benchOut := `BenchmarkServeMissKernel    17877    66987 ns/op    64 B/op    1 allocs/op
BenchmarkServeMissLegacy     7192   145346 ns/op    46978 B/op    311 allocs/op
PASS
`
	var out, errBuf bytes.Buffer
	if code := run([]string{"-merge-miss", path}, strings.NewReader(benchOut), &out, &errBuf); code != 0 {
		t.Fatalf("merge exit %d: %s", code, errBuf.String())
	}
	merged, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if merged.MissBench == nil || len(merged.MissBench.Benchmarks) != 2 {
		t.Fatalf("miss_bench not merged: %+v", merged.MissBench)
	}
	if k := merged.MissBench.Benchmarks[0]; k.Name != "ServeMissKernel" || k.AllocsPerOp != 1 {
		t.Errorf("kernel benchmark parsed as %+v", k)
	}
	if merged.ServeBench == nil || len(merged.ServeBench.Benchmarks) != 2 {
		t.Errorf("serve_bench clobbered by -merge-miss: %+v", merged.ServeBench)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{path, path}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("self-compare after -merge-miss: exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "miss allocs:") || !strings.Contains(out.String(), "miss speedup:") {
		t.Errorf("miss floor verdicts missing from compare:\n%s", out.String())
	}
}

// TestMissFloors: the new report's kernel must beat the legacy path by
// the alloc factor and the speedup floor; either side slipping fails even
// when each benchmark individually sits inside -serve-tol.
func TestMissFloors(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withMiss(missSectionOld))
	b := write(t, dir, "b.json", withMiss(missSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 { // 311x allocs, 2.24x ns
		t.Fatalf("exit %d, want 0:\n%s", code, out.String())
	}
	// Alloc floor violated: the kernel started allocating again.
	leaky := strings.ReplaceAll(missSectionOld, `"allocs_per_op": 1`, `"allocs_per_op": 150`)
	c := write(t, dir, "c.json", withMiss(leaky))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", b, c}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (150*3 > 311 violates the alloc floor):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "miss allocs:") || !strings.Contains(out.String(), "BELOW FLOOR") {
		t.Errorf("alloc floor violation not flagged:\n%s", out.String())
	}
	// Speedup floor violated: the kernel slowed to near-legacy.
	slow := strings.ReplaceAll(missSectionOld, `"name": "ServeMissKernel", "ns_per_op": 67000`,
		`"name": "ServeMissKernel", "ns_per_op": 140000`)
	d := write(t, dir, "d.json", withMiss(slow))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", b, d}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (1.07x is below the 1.5x speedup floor):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "miss speedup:") || !strings.Contains(out.String(), "BELOW FLOOR") {
		t.Errorf("speedup floor violation not flagged:\n%s", out.String())
	}
	// Both floors disabled: the slow kernel sits inside -serve-tol with
	// unchanged allocs, so nothing else fails the comparison.
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", "-miss-alloc-factor", "0", "-miss-speedup", "0", b, d}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (floors disabled):\n%s", code, out.String())
	}
}

// TestMissBenchDrift: miss_bench follows the same section drift rules as
// the other sections.
func TestMissBenchDrift(t *testing.T) {
	dir := t.TempDir()
	plain := write(t, dir, "plain.json", reportA)
	missy := write(t, dir, "missy.json", withMiss(missSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{missy, plain}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (miss_bench vanished):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "miss_bench: only in old report") {
		t.Errorf("section drift not explicit:\n%s", out.String())
	}
}

// withSecure splices a secure_bench section into the reportA fixture.
func withSecure(section string) string {
	return strings.ReplaceAll(reportA, `"total_wall_ms": 100,`,
		`"total_wall_ms": 100, "secure_bench": `+section+`,`)
}

const secureSectionOld = `{
  "gomaxprocs": 1,
  "benchmarks": [
    {"name": "WireElectPlain", "ns_per_op": 9200, "bytes_per_op": 425, "allocs_per_op": 5},
    {"name": "WireElectSecure", "ns_per_op": 10600, "bytes_per_op": 489, "allocs_per_op": 11}
  ]
}`

// TestMergeSecure: -merge-secure lands benchmark output in secure_bench,
// leaving the other sections and the experiments untouched, and the
// merged report round-trips through compare with the overhead verdict.
func TestMergeSecure(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "r.json", withServe(serveSectionOld))
	benchOut := `BenchmarkWireElectPlain    130843    9159 ns/op    425 B/op    5 allocs/op
BenchmarkWireElectSecure   113860   10558 ns/op    489 B/op   11 allocs/op
PASS
`
	var out, errBuf bytes.Buffer
	if code := run([]string{"-merge-secure", path}, strings.NewReader(benchOut), &out, &errBuf); code != 0 {
		t.Fatalf("merge exit %d: %s", code, errBuf.String())
	}
	merged, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if merged.SecureBench == nil || len(merged.SecureBench.Benchmarks) != 2 {
		t.Fatalf("secure_bench not merged: %+v", merged.SecureBench)
	}
	if merged.ServeBench == nil || len(merged.ServeBench.Benchmarks) != 2 {
		t.Errorf("serve_bench clobbered by -merge-secure: %+v", merged.ServeBench)
	}
	if p := merged.SecureBench.Benchmarks[0]; p.Name != "WireElectPlain" || p.NsPerOp != 9159 || p.AllocsPerOp != 5 {
		t.Errorf("WireElectPlain parsed as %+v", p)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{path, path}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("self-compare after -merge-secure: exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "secure overhead:") {
		t.Errorf("overhead line missing from compare:\n%s", out.String())
	}
}

// TestSecureOverheadCeiling: the new report's secure/plaintext ns/op
// ratio must stay at or below -secure-overhead, even when the secure
// benchmark individually moved less than -serve-tol would allow; the
// check is disabled with -secure-overhead 0.
func TestSecureOverheadCeiling(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", withSecure(secureSectionOld))
	b := write(t, dir, "b.json", withSecure(secureSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, nil, &out, &errBuf); code != 0 { // 1.15x <= 3x
		t.Fatalf("exit %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "secure overhead:") || !strings.Contains(out.String(), "ok") {
		t.Errorf("overhead verdict missing:\n%s", out.String())
	}
	// Ceiling violated: encryption ballooned to 4x the plaintext trip.
	slow := strings.ReplaceAll(secureSectionOld, `"name": "WireElectSecure", "ns_per_op": 10600`,
		`"name": "WireElectSecure", "ns_per_op": 36800`)
	c := write(t, dir, "c.json", withSecure(slow))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", a, c}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (4x is above the 3x ceiling):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ABOVE CEILING") {
		t.Errorf("ceiling violation not flagged:\n%s", out.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-serve-tol", "1000", "-secure-overhead", "0", a, c}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (ceiling disabled):\n%s", code, out.String())
	}
}

// TestSecureBenchDrift: secure_bench follows the same section drift
// rules as the other sections.
func TestSecureBenchDrift(t *testing.T) {
	dir := t.TempDir()
	plain := write(t, dir, "plain.json", reportA)
	sec := write(t, dir, "sec.json", withSecure(secureSectionOld))
	var out, errBuf bytes.Buffer
	if code := run([]string{sec, plain}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (secure_bench vanished):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "secure_bench: only in old report") {
		t.Errorf("section drift not explicit:\n%s", out.String())
	}
}
