package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const reportA = `{
  "schema": "ringbench/bench/v1",
  "seed": 1, "quick": true, "par": 1, "total_wall_ms": 100,
  "experiments": [
    {"id": "E4", "title": "t", "wall_ms": 80, "header": ["a"], "rows": [["1"]], "notes": ["n"]},
    {"id": "E5", "title": "t", "wall_ms": 20, "header": ["a"], "rows": [["2"]], "notes": []}
  ]
}`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `"wall_ms": 80`, `"wall_ms": 40`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("missing speedup column:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Errorf("content not flagged identical:\n%s", out.String())
	}
}

func TestContentDriftFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `[["1"]]`, `[["999"]]`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (content drift): %s", code, out.String())
	}
	if !strings.Contains(out.String(), "DIFFERS") {
		t.Errorf("drift not reported:\n%s", out.String())
	}
}

// TestDisjointExperimentSetsFail pins the missing-experiment behavior:
// an experiment present in only one report is a content difference, never
// a silent skip — two fully disjoint reports must fail loudly.
func TestDisjointExperimentSetsFail(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.NewReplacer("E4", "E7", "E5", "E6").Replace(reportA))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (disjoint sets are drift):\n%s", code, out.String())
	}
	for _, frag := range []string{"E6", "E7", "only in new report", "only in old report"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
	// Old-only rows must come out sorted regardless of map order.
	if e4, e5 := strings.Index(out.String(), "E4"), strings.Index(out.String(), "E5"); e4 > e5 {
		t.Errorf("old-only experiments not sorted:\n%s", out.String())
	}
}

func TestMissingExperimentFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	trimmed := strings.ReplaceAll(reportA,
		`,
    {"id": "E5", "title": "t", "wall_ms": 20, "header": ["a"], "rows": [["2"]], "notes": []}`, "")
	b := write(t, dir, "b.json", trimmed)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (dropped experiment):\n%s%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "only in old report") {
		t.Errorf("dropped experiment not reported explicitly:\n%s", out.String())
	}
}

func TestEngineMismatchIncomparable(t *testing.T) {
	dir := t.TempDir()
	withEngine := func(e string) string {
		return strings.ReplaceAll(reportA, `"par": 1,`, `"par": 1, "engine": "`+e+`",`)
	}
	a := write(t, dir, "a.json", withEngine("sim+goroutines"))
	b := write(t, dir, "b.json", withEngine("sim+goroutines+tcp"))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2 (engine rosters differ)", code)
	}
	if !strings.Contains(errBuf.String(), "engines differ") {
		t.Errorf("no engine diagnostic:\n%s", errBuf.String())
	}
	// A pre-engine-field baseline stays comparable with any engine roster.
	old := write(t, dir, "old.json", reportA)
	cur := write(t, dir, "cur.json", withEngine("sim+goroutines+tcp"))
	out.Reset()
	errBuf.Reset()
	if code := run([]string{old, cur}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (old baseline without engine field): %s", code, errBuf.String())
	}
}

func TestIncomparableSeeds(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", reportA)
	b := write(t, dir, "b.json", strings.ReplaceAll(reportA, `"seed": 1`, `"seed": 2`))
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUsage(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
