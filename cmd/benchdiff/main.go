// Command benchdiff compares two ringbench -json reports (see
// cmd/ringbench): it prints the per-experiment wall-clock delta and
// verifies that the experiment *content* — headers, rows, notes, and the
// experiment set itself — is unchanged. Content drift, including an
// experiment present in only one report, means a determinism regression
// (or an intentional experiment change) and makes the exit code nonzero;
// wall-time changes are reported but never fail, since they depend on the
// machine. Reports produced under different engine rosters (the `engine`
// field) are rejected as incomparable, like mismatched seeds.
//
// Reports may also carry a serve_bench section: the serving hot-path
// micro-benchmarks (ns/op, B/op, allocs/op from `go test -bench Serve`
// in internal/serve). When both reports have one, benchdiff checks each
// benchmark's ns/op against -serve-tol (new may not be slower than
// old×(1+tol)) and its allocs/op against the old value — in particular,
// a benchmark that was allocation-free must stay allocation-free. A
// section or benchmark present in only one report is explicit drift,
// never a silent skip.
//
// A wire_bench section carries the binary-protocol A/B pair the same
// way (BenchmarkWireHit / BenchmarkHTTPHit from `go test -bench
// 'WireHit|HTTPHit'`), compared under the same tolerance and
// allocation rules, plus one protocol-level invariant: when the new
// report's wire_bench has both WireHit and HTTPHit, the HTTP/wire
// ns/op ratio must stay at or above -wire-ratio (default 5) — the
// wire protocol's whole reason to exist is that a cached hit costs a
// small fraction of its HTTP equivalent, and this pins it.
//
// A miss_bench section carries the miss-path before/after pair
// (BenchmarkServeMissKernel / BenchmarkServeMissLegacy from `go test
// -bench 'ServeMiss(Kernel|Legacy)'`), compared under the same tolerance
// and allocation rules, plus two kernel invariants checked on the NEW
// report alone: the arena kernel must beat the legacy allocating path by
// at least -miss-alloc-factor in allocs/op (default 3) and by at least
// -miss-speedup in ns/op (default 1.5) — the scratch arenas' whole
// reason to exist.
//
// A secure_bench section carries the encryption A/B pair
// (BenchmarkWireElectPlain / BenchmarkWireElectSecure from `go test
// -bench 'WireElect(Plain|Secure)'`), compared under the same tolerance
// and allocation rules, plus one transport invariant checked on the NEW
// report alone: the secure/plaintext ns/op ratio must stay at or below
// -secure-overhead (default 3) — authenticated encryption that tripled
// the round trip would push operators back to plaintext.
//
// A cluster_bench section carries the replica-scaling ladder
// (BenchmarkClusterElect/replicas=N from `go test -bench ClusterElect`
// in internal/cluster), compared under the same tolerance and
// allocation rules, plus one scaling invariant: when the new report's
// ladder has both the replicas=1 and replicas=2 rungs AND the section
// ran with GOMAXPROCS >= 2, the 1→2 speedup (ns/op ratio) must reach
// -cluster-scale (default 1.6). On a single-core run the rungs cannot
// diverge — elections are CPU-bound — so the check prints a skip note
// instead of encoding a lie.
//
// Usage:
//
//	benchdiff [-serve-tol 0.5] [-wire-ratio 5] [-cluster-scale 1.6] OLD.json NEW.json
//	go test -run '^$' -bench Serve -benchmem ./internal/serve/ | benchdiff -merge-serve REPORT.json
//	go test -run '^$' -bench 'WireHit|HTTPHit' -benchmem ./internal/serve/ | benchdiff -merge-wire REPORT.json
//	go test -run '^$' -bench ClusterElect -benchmem ./internal/cluster/ | benchdiff -merge-cluster REPORT.json
//	go test -run '^$' -bench 'ServeMiss(Kernel|Legacy)' -benchmem ./internal/serve/ | benchdiff -merge-miss REPORT.json
//	go test -run '^$' -bench 'WireElect(Plain|Secure)' -benchmem ./internal/serve/ | benchdiff -merge-secure REPORT.json
//
// The merge forms parse `go test -bench` output from stdin and write
// it into REPORT.json's serve_bench / wire_bench / cluster_bench
// section (creating it), so one committed file carries the experiment
// baseline and the serving numbers together. The committed
// BENCH_PR7.json is the repository's perf baseline; `make
// bench-compare` regenerates a fresh report and diffs it against that.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"regexp"
	"sort"
	"strconv"
)

type experiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	WallMS float64    `json:"wall_ms"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes"`
}

// serveBenchmark is one serving micro-benchmark's result.
type serveBenchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// serveBench is the serve_bench report section: the hot-path
// micro-benchmarks and the GOMAXPROCS they ran under.
type serveBench struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks []serveBenchmark `json:"benchmarks"`
}

// algorithm is one registry algorithm's fingerprint: a reference
// election with exact leader/message/bit counts (see cmd/ringbench).
type algorithm struct {
	Name      string `json:"name"`
	Ring      string `json:"ring"`
	K         int    `json:"k"`
	Leader    int    `json:"leader"`
	Messages  int    `json:"messages"`
	TotalBits int    `json:"total_bits"`
}

type report struct {
	Schema       string       `json:"schema"`
	Seed         int64        `json:"seed"`
	Quick        bool         `json:"quick"`
	Par          int          `json:"par"`
	Engine       string       `json:"engine,omitempty"`
	GOMAXPROCS   int          `json:"gomaxprocs,omitempty"`
	Algorithms   []algorithm  `json:"algorithms,omitempty"`
	TotalWallMS  float64      `json:"total_wall_ms"`
	Experiments  []experiment `json:"experiments"`
	ServeBench   *serveBench  `json:"serve_bench,omitempty"`
	WireBench    *serveBench  `json:"wire_bench,omitempty"`
	ClusterBench *serveBench  `json:"cluster_bench,omitempty"`
	MissBench    *serveBench  `json:"miss_bench,omitempty"`
	SecureBench  *serveBench  `json:"secure_bench,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "ringbench/bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, r.Schema)
	}
	return &r, nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	serveTol := fs.Float64("serve-tol", 0.5, "allowed fractional ns/op regression in serve and wire benchmarks (0.5 = new may be 50% slower)")
	wireRatio := fs.Float64("wire-ratio", 5, "minimum HTTPHit/WireHit ns/op ratio the new report's wire_bench must hold (0 disables)")
	clusterScale := fs.Float64("cluster-scale", 1.6, "minimum replicas=1 -> replicas=2 speedup the new report's cluster_bench must hold; skipped when it ran single-core (0 disables)")
	mergeServe := fs.String("merge-serve", "", "parse `go test -bench` output from stdin into FILE's serve_bench section and exit")
	mergeWire := fs.String("merge-wire", "", "parse `go test -bench` output from stdin into FILE's wire_bench section and exit")
	mergeCluster := fs.String("merge-cluster", "", "parse `go test -bench` output from stdin into FILE's cluster_bench section and exit")
	mergeMiss := fs.String("merge-miss", "", "parse `go test -bench` output from stdin into FILE's miss_bench section and exit")
	mergeSecure := fs.String("merge-secure", "", "parse `go test -bench` output from stdin into FILE's secure_bench section and exit")
	secureOverhead := fs.Float64("secure-overhead", 3, "maximum WireElectSecure/WireElectPlain ns/op ratio the new report's secure_bench may hold (0 disables)")
	missAllocFactor := fs.Float64("miss-alloc-factor", 3, "minimum ServeMissLegacy/ServeMissKernel allocs/op factor the new report's miss_bench must hold (0 disables)")
	missSpeedup := fs.Float64("miss-speedup", 1.5, "minimum ServeMissLegacy/ServeMissKernel ns/op speedup the new report's miss_bench must hold (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	merges := map[string]string{
		"serve_bench":   *mergeServe,
		"wire_bench":    *mergeWire,
		"cluster_bench": *mergeCluster,
		"miss_bench":    *mergeMiss,
		"secure_bench":  *mergeSecure,
	}
	active := 0
	for _, path := range merges {
		if path != "" {
			active++
		}
	}
	if active > 0 {
		if active > 1 {
			fmt.Fprintln(stderr, "benchdiff: the -merge-* flags are mutually exclusive (run them as separate passes)")
			return 2
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "benchdiff: merge flags take no positional arguments")
			return 2
		}
		for section, path := range merges {
			if path != "" {
				return runMerge(path, section, stdin, stdout, stderr)
			}
		}
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-serve-tol F] OLD.json NEW.json")
		return 2
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if old.Seed != cur.Seed || old.Quick != cur.Quick {
		fmt.Fprintf(stderr, "benchdiff: reports are not comparable: seed/quick differ (%d/%v vs %d/%v)\n",
			old.Seed, old.Quick, cur.Seed, cur.Quick)
		return 2
	}
	// An old baseline written before the engine field existed is still
	// comparable; two reports that each name a different engine roster are
	// not.
	if old.Engine != "" && cur.Engine != "" && old.Engine != cur.Engine {
		fmt.Fprintf(stderr, "benchdiff: reports are not comparable: engines differ (%q vs %q)\n",
			old.Engine, cur.Engine)
		return 2
	}

	oldByID := make(map[string]experiment, len(old.Experiments))
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	drift := 0
	fmt.Fprintf(stdout, "%-5s %10s %10s %8s  %s\n", "id", "old ms", "new ms", "speedup", "content")
	for _, ne := range cur.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			// An experiment only one report has IS a content difference —
			// a silently skipped row would make disjoint reports "pass".
			fmt.Fprintf(stdout, "%-5s %10s %10.1f %8s  only in new report\n", ne.ID, "-", ne.WallMS, "-")
			drift++
			continue
		}
		delete(oldByID, ne.ID)
		speedup := "-"
		if ne.WallMS > 0 {
			speedup = fmt.Sprintf("%.2fx", oe.WallMS/ne.WallMS)
		}
		content := "identical"
		if !reflect.DeepEqual(oe.Header, ne.Header) || !reflect.DeepEqual(oe.Rows, ne.Rows) || !reflect.DeepEqual(oe.Notes, ne.Notes) {
			content = "DIFFERS"
			drift++
		}
		fmt.Fprintf(stdout, "%-5s %10.1f %10.1f %8s  %s\n", ne.ID, oe.WallMS, ne.WallMS, speedup, content)
	}
	leftover := make([]string, 0, len(oldByID))
	for id := range oldByID {
		leftover = append(leftover, id)
	}
	sort.Strings(leftover)
	for _, id := range leftover {
		fmt.Fprintf(stdout, "%-5s %10.1f %10s %8s  only in old report\n", id, oldByID[id].WallMS, "-", "-")
		drift++
	}
	fmt.Fprintf(stdout, "total %10.1f %10.1f (par %d -> %d)\n", old.TotalWallMS, cur.TotalWallMS, old.Par, cur.Par)

	drift += compareAlgorithms(old.Algorithms, cur.Algorithms, stdout)
	drift += compareBenchSection("serve_bench", old.ServeBench, cur.ServeBench, *serveTol, stdout)
	drift += compareBenchSection("wire_bench", old.WireBench, cur.WireBench, *serveTol, stdout)
	drift += compareBenchSection("cluster_bench", old.ClusterBench, cur.ClusterBench, *serveTol, stdout)
	drift += compareBenchSection("miss_bench", old.MissBench, cur.MissBench, *serveTol, stdout)
	drift += compareBenchSection("secure_bench", old.SecureBench, cur.SecureBench, *serveTol, stdout)
	drift += checkWireRatio(cur.WireBench, *wireRatio, stdout)
	drift += checkClusterScale(cur.ClusterBench, *clusterScale, stdout)
	drift += checkMissFloors(cur.MissBench, *missAllocFactor, *missSpeedup, stdout)
	drift += checkSecureOverhead(cur.SecureBench, *secureOverhead, stdout)

	if drift > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d item(s) drifted\n", drift)
		return 1
	}
	return 0
}

// compareAlgorithms diffs the registry rosters. An algorithm present in
// only one report is drift — a protocol silently appearing in (or
// vanishing from) the registry must never pass a baseline comparison —
// and so is any change to an algorithm's reference election, which is a
// pure function of the registry's machines and therefore as
// deterministic as an experiment row. Two reports that both predate the
// field compare clean.
func compareAlgorithms(old, cur []algorithm, stdout io.Writer) int {
	if len(old) == 0 && len(cur) == 0 {
		return 0
	}
	drift := 0
	fmt.Fprintf(stdout, "algorithms (reference elections):\n")
	oldByName := make(map[string]algorithm, len(old))
	for _, a := range old {
		oldByName[a.Name] = a
	}
	for _, na := range cur {
		oa, ok := oldByName[na.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-14s %-18s msgs %6d bits %6d  only in new report\n", na.Name, na.Ring, na.Messages, na.TotalBits)
			drift++
			continue
		}
		delete(oldByName, na.Name)
		verdict := "identical"
		if oa != na {
			verdict = "DIFFERS"
			drift++
		}
		fmt.Fprintf(stdout, "%-14s %-18s msgs %6d bits %6d  %s\n", na.Name, na.Ring, na.Messages, na.TotalBits, verdict)
	}
	leftover := make([]string, 0, len(oldByName))
	for name := range oldByName {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		fmt.Fprintf(stdout, "%-14s %-18s msgs %6d bits %6d  only in old report\n",
			name, oldByName[name].Ring, oldByName[name].Messages, oldByName[name].TotalBits)
		drift++
	}
	return drift
}

// compareBenchSection diffs one micro-benchmark section (serve_bench or
// wire_bench). A section present in only one report is drift; so is a
// benchmark present in only one section, a ns/op regression beyond tol,
// an allocs/op increase, or a GOMAXPROCS mismatch (numbers from
// different parallelism are not comparable). Improvements never fail.
func compareBenchSection(section string, old, cur *serveBench, tol float64, stdout io.Writer) int {
	switch {
	case old == nil && cur == nil:
		return 0
	case old == nil:
		fmt.Fprintf(stdout, "%s: only in new report\n", section)
		return 1
	case cur == nil:
		fmt.Fprintf(stdout, "%s: only in old report\n", section)
		return 1
	}
	drift := 0
	if old.GOMAXPROCS != cur.GOMAXPROCS {
		fmt.Fprintf(stdout, "%s: GOMAXPROCS differs (%d vs %d): not comparable\n", section, old.GOMAXPROCS, cur.GOMAXPROCS)
		return 1
	}
	fmt.Fprintf(stdout, "%s benchmarks (gomaxprocs %d, ns/op tolerance +%.0f%%):\n", section, cur.GOMAXPROCS, tol*100)
	fmt.Fprintf(stdout, "%-28s %12s %12s %7s %7s %7s  %s\n", "name", "old ns/op", "new ns/op", "ratio", "old al", "new al", "verdict")
	oldByName := make(map[string]serveBenchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldByName[b.Name] = b
	}
	for _, nb := range cur.Benchmarks {
		ob, ok := oldByName[nb.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-28s %12s %12.1f %7s %7s %7d  only in new report\n", nb.Name, "-", nb.NsPerOp, "-", "-", nb.AllocsPerOp)
			drift++
			continue
		}
		delete(oldByName, nb.Name)
		verdict := "ok"
		if nb.NsPerOp > ob.NsPerOp*(1+tol) {
			verdict = "REGRESSED"
			drift++
		}
		// Allocation counts are deterministic: any increase is a real code
		// change, and allocation-free paths must stay allocation-free.
		if nb.AllocsPerOp > ob.AllocsPerOp {
			verdict = "ALLOCS"
			drift++
		}
		ratio := "-"
		if nb.NsPerOp > 0 {
			ratio = fmt.Sprintf("%.2fx", ob.NsPerOp/nb.NsPerOp)
		}
		fmt.Fprintf(stdout, "%-28s %12.1f %12.1f %7s %7d %7d  %s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, ratio, ob.AllocsPerOp, nb.AllocsPerOp, verdict)
	}
	leftover := make([]string, 0, len(oldByName))
	for name := range oldByName {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		fmt.Fprintf(stdout, "%-28s %12.1f %12s %7s %7d %7s  only in old report\n",
			name, oldByName[name].NsPerOp, "-", "-", oldByName[name].AllocsPerOp, "-")
		drift++
	}
	return drift
}

// checkWireRatio enforces the wire protocol's reason to exist on the
// NEW report alone: a cached hit over the wire must cost at most
// 1/minRatio of the same hit over HTTP. Skipped (not drift) when the
// report has no wire_bench or lacks either side of the A/B pair — the
// section-drift check already catches a pair that used to exist.
func checkWireRatio(cur *serveBench, minRatio float64, stdout io.Writer) int {
	if cur == nil || minRatio <= 0 {
		return 0
	}
	var wire, http float64
	for _, b := range cur.Benchmarks {
		switch b.Name {
		case "WireHit":
			wire = b.NsPerOp
		case "HTTPHit":
			http = b.NsPerOp
		}
	}
	if wire <= 0 || http <= 0 {
		return 0
	}
	ratio := http / wire
	verdict := "ok"
	drift := 0
	if ratio < minRatio {
		verdict = "BELOW FLOOR"
		drift = 1
	}
	fmt.Fprintf(stdout, "wire ratio: HTTPHit %.1f ns/op / WireHit %.1f ns/op = %.1fx (floor %.1fx)  %s\n",
		http, wire, ratio, minRatio, verdict)
	return drift
}

// checkClusterScale enforces the cluster's reason to exist on the NEW
// report alone: with a second replica, routed election throughput must
// improve by at least minScale. Only meaningful when the ladder actually
// had cores to scale onto — a single-core run is reported and skipped,
// never failed, and never silently: the skip note is printed so a
// baseline quietly recorded on a laptop doesn't masquerade as a pass.
// A ladder that used to exist and vanished is caught by the
// cluster_bench section-drift check, not here.
func checkClusterScale(cur *serveBench, minScale float64, stdout io.Writer) int {
	if cur == nil || minScale <= 0 {
		return 0
	}
	var one, two float64
	for _, b := range cur.Benchmarks {
		switch b.Name {
		case "ClusterElect/replicas=1":
			one = b.NsPerOp
		case "ClusterElect/replicas=2":
			two = b.NsPerOp
		}
	}
	if one <= 0 || two <= 0 {
		return 0
	}
	if cur.GOMAXPROCS < 2 {
		fmt.Fprintf(stdout, "cluster scale: skipped — cluster_bench ran with GOMAXPROCS %d; a single core cannot scale CPU-bound elections\n", cur.GOMAXPROCS)
		return 0
	}
	scale := one / two
	verdict := "ok"
	drift := 0
	if scale < minScale {
		verdict = "BELOW FLOOR"
		drift = 1
	}
	fmt.Fprintf(stdout, "cluster scale: replicas=1 %.1f ns/op / replicas=2 %.1f ns/op = %.2fx (floor %.2fx)  %s\n",
		one, two, scale, minScale, verdict)
	return drift
}

// checkMissFloors enforces the miss-path kernel's reason to exist on the
// NEW report alone: the arena kernel (ServeMissKernel) must beat the
// legacy allocating path (ServeMissLegacy) by allocFactor in allocs/op
// and by speedup in ns/op. Skipped (not drift) when the report has no
// miss_bench or lacks either side of the pair — the section-drift check
// already catches a pair that used to exist. An allocation-free kernel
// (0 allocs/op) satisfies any factor.
func checkMissFloors(cur *serveBench, allocFactor, speedup float64, stdout io.Writer) int {
	if cur == nil {
		return 0
	}
	var kernel, legacy *serveBenchmark
	for i := range cur.Benchmarks {
		switch cur.Benchmarks[i].Name {
		case "ServeMissKernel":
			kernel = &cur.Benchmarks[i]
		case "ServeMissLegacy":
			legacy = &cur.Benchmarks[i]
		}
	}
	if kernel == nil || legacy == nil {
		return 0
	}
	drift := 0
	if allocFactor > 0 {
		verdict := "ok"
		if float64(kernel.AllocsPerOp)*allocFactor > float64(legacy.AllocsPerOp) {
			verdict = "BELOW FLOOR"
			drift++
		}
		fmt.Fprintf(stdout, "miss allocs: ServeMissLegacy %d allocs/op / ServeMissKernel %d allocs/op (floor %.1fx)  %s\n",
			legacy.AllocsPerOp, kernel.AllocsPerOp, allocFactor, verdict)
	}
	if speedup > 0 && kernel.NsPerOp > 0 {
		ratio := legacy.NsPerOp / kernel.NsPerOp
		verdict := "ok"
		if ratio < speedup {
			verdict = "BELOW FLOOR"
			drift++
		}
		fmt.Fprintf(stdout, "miss speedup: ServeMissLegacy %.1f ns/op / ServeMissKernel %.1f ns/op = %.2fx (floor %.2fx)  %s\n",
			legacy.NsPerOp, kernel.NsPerOp, ratio, speedup, verdict)
	}
	return drift
}

// checkSecureOverhead enforces the hardened transport's usability bound
// on the NEW report alone: a cached election round trip through the
// ringsec record layer must cost at most maxOverhead times its plaintext
// equivalent. Skipped (not drift) when the report has no secure_bench or
// lacks either side of the A/B pair — the section-drift check already
// catches a pair that used to exist.
func checkSecureOverhead(cur *serveBench, maxOverhead float64, stdout io.Writer) int {
	if cur == nil || maxOverhead <= 0 {
		return 0
	}
	var plain, sec float64
	for _, b := range cur.Benchmarks {
		switch b.Name {
		case "WireElectPlain":
			plain = b.NsPerOp
		case "WireElectSecure":
			sec = b.NsPerOp
		}
	}
	if plain <= 0 || sec <= 0 {
		return 0
	}
	ratio := sec / plain
	verdict := "ok"
	drift := 0
	if ratio > maxOverhead {
		verdict = "ABOVE CEILING"
		drift = 1
	}
	fmt.Fprintf(stdout, "secure overhead: WireElectSecure %.1f ns/op / WireElectPlain %.1f ns/op = %.2fx (ceiling %.2fx)  %s\n",
		sec, plain, ratio, maxOverhead, verdict)
	return drift
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkServeHit-8   1254979   923.4 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-(\d+))?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// runMerge reads `go test -bench` output from stdin and stores the
// parsed benchmarks as path's serve_bench or wire_bench section.
func runMerge(path, section string, stdin io.Reader, stdout, stderr io.Writer) int {
	if stdin == nil {
		fmt.Fprintln(stderr, "benchdiff: merging needs benchmark output on stdin")
		return 2
	}
	r, err := load(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	sb := &serveBench{GOMAXPROCS: 1}
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := serveBenchmark{Name: m[1]}
		if m[2] != "" {
			sb.GOMAXPROCS, _ = strconv.Atoi(m[2])
		}
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		sb.Benchmarks = append(sb.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "benchdiff: reading stdin: %v\n", err)
		return 2
	}
	if len(sb.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark lines found on stdin")
		return 2
	}
	switch section {
	case "wire_bench":
		r.WireBench = sb
	case "cluster_bench":
		r.ClusterBench = sb
	case "miss_bench":
		r.MissBench = sb
	case "secure_bench":
		r.SecureBench = sb
	default:
		r.ServeBench = sb
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "benchdiff: merged %d benchmark(s) (gomaxprocs %d) into %s's %s\n",
		len(sb.Benchmarks), sb.GOMAXPROCS, path, section)
	return 0
}
