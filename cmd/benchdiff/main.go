// Command benchdiff compares two ringbench -json reports (see
// cmd/ringbench): it prints the per-experiment wall-clock delta and
// verifies that the experiment *content* — headers, rows, notes, and the
// experiment set itself — is unchanged. Content drift, including an
// experiment present in only one report, means a determinism regression
// (or an intentional experiment change) and makes the exit code nonzero;
// wall-time changes are reported but never fail, since they depend on the
// machine. Reports produced under different engine rosters (the `engine`
// field) are rejected as incomparable, like mismatched seeds.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// The committed BENCH_PR2.json is the repository's perf baseline; `make
// bench-compare` regenerates a fresh report and diffs it against that.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
)

type experiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	WallMS float64    `json:"wall_ms"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes"`
}

type report struct {
	Schema      string       `json:"schema"`
	Seed        int64        `json:"seed"`
	Quick       bool         `json:"quick"`
	Par         int          `json:"par"`
	Engine      string       `json:"engine,omitempty"`
	TotalWallMS float64      `json:"total_wall_ms"`
	Experiments []experiment `json:"experiments"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "ringbench/bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, r.Schema)
	}
	return &r, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff OLD.json NEW.json")
		return 2
	}
	old, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := load(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if old.Seed != cur.Seed || old.Quick != cur.Quick {
		fmt.Fprintf(stderr, "benchdiff: reports are not comparable: seed/quick differ (%d/%v vs %d/%v)\n",
			old.Seed, old.Quick, cur.Seed, cur.Quick)
		return 2
	}
	// An old baseline written before the engine field existed is still
	// comparable; two reports that each name a different engine roster are
	// not.
	if old.Engine != "" && cur.Engine != "" && old.Engine != cur.Engine {
		fmt.Fprintf(stderr, "benchdiff: reports are not comparable: engines differ (%q vs %q)\n",
			old.Engine, cur.Engine)
		return 2
	}

	oldByID := make(map[string]experiment, len(old.Experiments))
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	drift := 0
	fmt.Fprintf(stdout, "%-5s %10s %10s %8s  %s\n", "id", "old ms", "new ms", "speedup", "content")
	for _, ne := range cur.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			// An experiment only one report has IS a content difference —
			// a silently skipped row would make disjoint reports "pass".
			fmt.Fprintf(stdout, "%-5s %10s %10.1f %8s  only in new report\n", ne.ID, "-", ne.WallMS, "-")
			drift++
			continue
		}
		delete(oldByID, ne.ID)
		speedup := "-"
		if ne.WallMS > 0 {
			speedup = fmt.Sprintf("%.2fx", oe.WallMS/ne.WallMS)
		}
		content := "identical"
		if !reflect.DeepEqual(oe.Header, ne.Header) || !reflect.DeepEqual(oe.Rows, ne.Rows) || !reflect.DeepEqual(oe.Notes, ne.Notes) {
			content = "DIFFERS"
			drift++
		}
		fmt.Fprintf(stdout, "%-5s %10.1f %10.1f %8s  %s\n", ne.ID, oe.WallMS, ne.WallMS, speedup, content)
	}
	leftover := make([]string, 0, len(oldByID))
	for id := range oldByID {
		leftover = append(leftover, id)
	}
	sort.Strings(leftover)
	for _, id := range leftover {
		fmt.Fprintf(stdout, "%-5s %10.1f %10s %8s  only in old report\n", id, oldByID[id].WallMS, "-", "-")
		drift++
	}
	fmt.Fprintf(stdout, "total %10.1f %10.1f (par %d -> %d)\n", old.TotalWallMS, cur.TotalWallMS, old.Par, cur.Par)
	if drift > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d experiment(s) drifted in content\n", drift)
		return 1
	}
	return 0
}
