package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/secure"
	"repro/internal/serve"
)

// TestRunAgainstServer points ringload at an in-process serve handler
// and checks the JSON report and exit code.
func TestRunAgainstServer(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var out, errb bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-n", "60", "-workers", "4", "-seed", "3",
		"-alg", "B", "-k", "3", "-crosscheck", "0.5",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d; stderr=%q", code, errb.String())
	}
	var rep load.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Requests != 60 || rep.OK != 60 {
		t.Errorf("report accounting: %+v", rep)
	}
	if rep.Crosschecks != 30 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d, want 30/0", rep.Crosschecks, rep.Divergences)
	}
	if rep.Cached == 0 {
		t.Error("hot mix produced no cache hits")
	}
	if rep.P50MS <= 0 {
		t.Errorf("missing latency stats: %+v", rep)
	}
	if rep.ClientMem.Mallocs == 0 {
		t.Errorf("client_mem missing from report: %+v", rep.ClientMem)
	}
}

// TestRunFlagErrors covers usage exits.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"-crosscheck", "2"},
		{"trailing"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestRunUnreachableServer: a dead target is exit 1 with a clear
// message, not a hang or a zero-exit empty report. The readyz
// pre-flight catches it before a single election request is spent.
func TestRunUnreachableServer(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-url", "http://127.0.0.1:1", "-n", "5", "-timeout", "2s"}, &out, &errb)
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "readyz pre-flight") {
		t.Errorf("stderr %q missing diagnosis", errb.String())
	}
}

// TestRunWireAgainstServer drives the same seeded mix over the RGV1
// binary protocol against an in-process wire server (HTTP stays up for
// the readyz pre-flight) and checks the report: every request OK, zero
// divergences from the local simulator, cache effectiveness intact.
func TestRunWireAgainstServer(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ws := serve.NewWireServer(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		s.Close()
	}()

	var out, errb bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-proto", "wire", "-wire-addr", ln.Addr().String(),
		"-wire-conns", "2", "-n", "60", "-workers", "4", "-seed", "3",
		"-alg", "B", "-k", "3", "-crosscheck", "0.5",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d; stderr=%q", code, errb.String())
	}
	var rep load.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Proto != "wire" {
		t.Errorf("report proto %q, want wire", rep.Proto)
	}
	if rep.Requests != 60 || rep.OK != 60 {
		t.Errorf("report accounting: %+v", rep)
	}
	if rep.Crosschecks != 30 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d, want 30/0", rep.Crosschecks, rep.Divergences)
	}
	if rep.Cached == 0 {
		t.Error("hot mix produced no cache hits")
	}
}

// TestRunSecureWireAgainstServer drives the mix through the CLI's
// -keyfile/-server-key path against a secure wire server: the client
// loads its identity from disk, pins the server's public key from the
// flag, and the report must look exactly like a plaintext wire run.
func TestRunSecureWireAgainstServer(t *testing.T) {
	serverKey, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	clientKey, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	keyPath := filepath.Join(t.TempDir(), "client.key")
	if err := secure.WriteKeyFile(keyPath, clientKey); err != nil {
		t.Fatal(err)
	}

	s := serve.New(serve.Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ws := serve.NewWireServerWith(s, serve.WireServerOptions{
		Secure: &secure.ServerConfig{
			Config:  secure.Config{Identity: serverKey},
			Allowed: []secure.PublicKey{clientKey.Public()},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		s.Close()
	}()

	var out, errb bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-proto", "wire", "-wire-addr", ln.Addr().String(),
		"-keyfile", keyPath, "-server-key", serverKey.Public().String(),
		"-wire-conns", "2", "-n", "60", "-workers", "4", "-seed", "3",
		"-alg", "B", "-k", "3", "-crosscheck", "0.5",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d; stderr=%q", code, errb.String())
	}
	var rep load.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Requests != 60 || rep.OK != 60 {
		t.Errorf("report accounting: %+v", rep)
	}
	if rep.Crosschecks != 30 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d, want 30/0", rep.Crosschecks, rep.Divergences)
	}
}

// TestRunWireFlagErrors: -proto validation is a usage error, before any
// traffic.
func TestRunWireFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-proto", "grpc"},
		{"-proto", "wire"}, // missing -wire-addr
		{"-proto", "wire", "-wire-addr", "127.0.0.1:1", "-keyfile", "x.key"}, // no -server-key
		{"-proto", "http", "-keyfile", "x.key", "-server-key", "AAAA"},       // ringsec is wire-only
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestRunClusterMode drives the full -cluster path through the CLI: an
// in-process two-rung ladder, crosschecked, reported as JSON on stdout.
func TestRunClusterMode(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster ladder is a long test")
	}
	var out, errb bytes.Buffer
	code := run([]string{
		"-cluster", "-replicas", "1,2", "-replica-workers", "1",
		"-n", "80", "-workers", "8", "-seed", "5", "-crosscheck", "0.25",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d; stderr=%s", code, errb.String())
	}
	var rep load.ClusterReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a ClusterReport: %v\n%s", err, out.String())
	}
	if len(rep.Rungs) != 2 || rep.Divergences != 0 {
		t.Fatalf("report: %+v", rep)
	}
	for _, r := range rep.Rungs {
		if r.Report.Crosschecks == 0 {
			t.Errorf("%d replicas: no crosschecks ran", r.Replicas)
		}
	}
}

// TestRunClusterFlagErrors covers the -cluster usage errors: bad
// ladders exit 2, and a missed -scale-floor exits 1 but still prints
// the report for diagnosis.
func TestRunClusterFlagErrors(t *testing.T) {
	for _, ladder := range []string{"", "0", "two", "1,,x"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-cluster", "-replicas", ladder, "-n", "10"}, &out, &errb); code != 2 {
			t.Errorf("-replicas %q: exit %d, want 2; stderr=%s", ladder, code, errb.String())
		}
	}
	var out, errb bytes.Buffer
	code := run([]string{
		"-cluster", "-replicas", "1", "-replica-workers", "1",
		"-n", "30", "-scale-floor", "100",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("missed floor: exit %d, want 1; stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"rungs"`) {
		t.Errorf("report missing alongside the floor failure:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "floor") {
		t.Errorf("floor failure not diagnosed: %s", errb.String())
	}
}
