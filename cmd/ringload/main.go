// Command ringload drives a seeded, deterministic election-request mix
// (internal/load) against a running ringd and prints the run report —
// throughput, latency quantiles, cache effectiveness per traffic class,
// shed accounting, and the client's own allocation bill (client_mem:
// runtime.MemStats deltas over the run) — as JSON on stdout.
//
//	ringd -listen 127.0.0.1:8322 &
//	ringload -url http://127.0.0.1:8322 -n 1000 -seed 7 -crosscheck 0.25
//
// With -proto wire the same seeded mix is driven over the RGV1 binary
// protocol instead of HTTP/JSON — pooled persistent connections (set
// with -wire-conns), pipelined requests — against the daemon's
// -wire-addr port, making a pair of runs differing only in -proto a
// direct protocol A/B comparison:
//
//	ringd -listen 127.0.0.1:8322 -wire-addr 127.0.0.1:8323 &
//	ringload -url http://127.0.0.1:8322 -proto wire -wire-addr 127.0.0.1:8323 -n 1000
//
// With -crosscheck > 0 a sampled fraction of responses is re-verified
// against the local deterministic simulator in the request's own frame,
// end-to-end checking the daemon's rotation canonicalization. Exit
// status 1 flags divergences or transport failures.
//
// With -cluster the tool needs no external daemon at all: it boots an
// in-process replica fleet plus gateway (internal/cluster) at each rung
// of the -replicas ladder, drives the identical seeded mix through the
// gateway, and prints a ClusterReport — per-rung throughput, speedup
// over the single-replica rung, and the hot-traffic hit rate that
// rendezvous routing is supposed to preserve:
//
//	ringload -cluster -replicas 1,2,4 -n 2000 -crosscheck 0.25
//
// -scale-floor N fails the run (exit 1) when the best rung's speedup is
// below N; leave it 0 on hosts without the cores to scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/load"
	"repro/internal/secure"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url        = fs.String("url", "http://127.0.0.1:8322", "base URL of the target ringd")
		proto      = fs.String("proto", "http", "request protocol: http (JSON /v1/elect) or wire (RGV1 binary)")
		wireAddr   = fs.String("wire-addr", "", "daemon RGV1 port (host:port); required with -proto wire")
		wireConns  = fs.Int("wire-conns", 4, "pooled wire connections requests are pipelined over")
		n          = fs.Int("n", 1000, "total requests")
		workers    = fs.Int("workers", 8, "client concurrency")
		seed       = fs.Int64("seed", 1, "mix seed (same seed, same requests)")
		hotRings   = fs.Int("hot", 4, "hot working-set size")
		hotFrac    = fs.Float64("hot-frac", 0.45, "fraction of requests repeating a hot ring")
		rotFrac    = fs.Float64("rot-frac", 0.30, "fraction resubmitting a hot ring rotated")
		symFrac    = fs.Float64("symmetric-fraction", 0, "fraction of requests sending symmetric rings under ItaiRodeh")
		alg        = fs.String("alg", "B", "algorithm (A, B, Astar, CR, Peterson, KnownN, IR)")
		k          = fs.Int("k", 3, "multiplicity bound k")
		engine     = fs.String("engine", "sim", "execution engine: sim or goroutines")
		crosscheck = fs.Float64("crosscheck", 0, "fraction of responses re-verified locally (0 disables)")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		keyFile    = fs.String("keyfile", "", "client's ringsec private key file; with -server-key, encrypts every wire connection")
		serverKey  = fs.String("server-key", "", "target's base64 ringsec public key (required with -keyfile)")

		clusterMode    = fs.Bool("cluster", false, "run an in-process replica ladder behind a gateway instead of targeting -url")
		replicasSpec   = fs.String("replicas", "1,2,4", "fleet-size ladder for -cluster, comma-separated")
		replicaCache   = fs.Int("replica-cache", 0, "per-replica result-cache entries in -cluster mode (0 = serve default)")
		replicaWorkers = fs.Int("replica-workers", 0, "per-replica election workers in -cluster mode (0 = one per CPU)")
		scaleFloor     = fs.Float64("scale-floor", 0, "fail unless the best -cluster rung speedup reaches this (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ringload: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *crosscheck < 0 || *crosscheck > 1 {
		fmt.Fprintf(stderr, "ringload: -crosscheck must be in [0, 1]\n")
		return 2
	}

	if *proto != load.ProtoHTTP && *proto != load.ProtoWire {
		fmt.Fprintf(stderr, "ringload: -proto must be http or wire, got %q\n", *proto)
		return 2
	}
	if !*clusterMode && *proto == load.ProtoWire && *wireAddr == "" {
		fmt.Fprintf(stderr, "ringload: -proto wire requires -wire-addr\n")
		return 2
	}
	if (*keyFile == "") != (*serverKey == "") {
		fmt.Fprintf(stderr, "ringload: -keyfile and -server-key must be set together\n")
		return 2
	}
	var wireSec *secure.ClientConfig
	if *keyFile != "" {
		if *proto != load.ProtoWire {
			fmt.Fprintf(stderr, "ringload: -keyfile requires -proto wire (only RGV1 speaks ringsec)\n")
			return 2
		}
		identity, err := secure.LoadKeyFile(*keyFile)
		if err != nil {
			fmt.Fprintf(stderr, "ringload: %v\n", err)
			return 1
		}
		sk, err := secure.ParsePublicKey(*serverKey)
		if err != nil {
			fmt.Fprintf(stderr, "ringload: -server-key: %v\n", err)
			return 1
		}
		wireSec = &secure.ClientConfig{Config: secure.Config{Identity: identity}, ServerKey: sk}
	}

	loadCfg := load.Config{
		BaseURL:           *url,
		Proto:             *proto,
		WireAddr:          *wireAddr,
		WireConns:         *wireConns,
		WireSecure:        wireSec,
		Requests:          *n,
		Workers:           *workers,
		Seed:              *seed,
		HotRings:          *hotRings,
		HotFraction:       *hotFrac,
		RotatedFraction:   *rotFrac,
		SymmetricFraction: *symFrac,
		Alg:               *alg,
		K:                 *k,
		Engine:            *engine,
		Crosscheck:        *crosscheck,
		Timeout:           *timeout,
	}

	if *clusterMode {
		return runCluster(loadCfg, *replicasSpec, *replicaCache, *replicaWorkers, *scaleFloor, stdout, stderr)
	}

	rep, err := load.Run(loadCfg)
	if err != nil {
		fmt.Fprintf(stderr, "ringload: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "ringload: encoding report: %v\n", err)
		return 1
	}
	if rep.Divergences > 0 {
		fmt.Fprintf(stderr, "ringload: %d of %d crosschecks DIVERGED\n", rep.Divergences, rep.Crosschecks)
		return 1
	}
	if rep.TransportErrors == rep.Requests {
		fmt.Fprintf(stderr, "ringload: no request reached %s\n", *url)
		return 1
	}
	return 0
}

// parseLadder parses the -replicas flag, e.g. "1,2,4,8".
func parseLadder(spec string) ([]int, error) {
	var ladder []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		ladder = append(ladder, n)
	}
	if len(ladder) == 0 {
		return nil, fmt.Errorf("empty replica ladder")
	}
	return ladder, nil
}

// runCluster executes the in-process replica ladder and prints the
// ClusterReport. Exit 1 on divergences, per-rung failure, or a missed
// -scale-floor.
func runCluster(loadCfg load.Config, replicasSpec string, replicaCache, replicaWorkers int, scaleFloor float64, stdout, stderr io.Writer) int {
	ladder, err := parseLadder(replicasSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ringload: -replicas: %v\n", err)
		return 2
	}
	rep, err := load.RunCluster(load.ClusterConfig{
		Replicas:       ladder,
		ReplicaCache:   replicaCache,
		ReplicaWorkers: replicaWorkers,
		Load:           loadCfg,
		ScaleFloor:     scaleFloor,
	})
	if rep != nil {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(rep); encErr != nil {
			fmt.Fprintf(stderr, "ringload: encoding report: %v\n", encErr)
			return 1
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "ringload: %v\n", err)
		return 1
	}
	if rep.Divergences > 0 {
		fmt.Fprintf(stderr, "ringload: %d crosschecks DIVERGED across the ladder\n", rep.Divergences)
		return 1
	}
	return 0
}
