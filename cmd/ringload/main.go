// Command ringload drives a seeded, deterministic election-request mix
// (internal/load) against a running ringd and prints the run report —
// throughput, latency quantiles, cache effectiveness per traffic class,
// shed accounting, and the client's own allocation bill (client_mem:
// runtime.MemStats deltas over the run) — as JSON on stdout.
//
//	ringd -listen 127.0.0.1:8322 &
//	ringload -url http://127.0.0.1:8322 -n 1000 -seed 7 -crosscheck 0.25
//
// With -proto wire the same seeded mix is driven over the RGV1 binary
// protocol instead of HTTP/JSON — pooled persistent connections (set
// with -wire-conns), pipelined requests — against the daemon's
// -wire-addr port, making a pair of runs differing only in -proto a
// direct protocol A/B comparison:
//
//	ringd -listen 127.0.0.1:8322 -wire-addr 127.0.0.1:8323 &
//	ringload -url http://127.0.0.1:8322 -proto wire -wire-addr 127.0.0.1:8323 -n 1000
//
// With -crosscheck > 0 a sampled fraction of responses is re-verified
// against the local deterministic simulator in the request's own frame,
// end-to-end checking the daemon's rotation canonicalization. Exit
// status 1 flags divergences or transport failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url        = fs.String("url", "http://127.0.0.1:8322", "base URL of the target ringd")
		proto      = fs.String("proto", "http", "request protocol: http (JSON /v1/elect) or wire (RGV1 binary)")
		wireAddr   = fs.String("wire-addr", "", "daemon RGV1 port (host:port); required with -proto wire")
		wireConns  = fs.Int("wire-conns", 4, "pooled wire connections requests are pipelined over")
		n          = fs.Int("n", 1000, "total requests")
		workers    = fs.Int("workers", 8, "client concurrency")
		seed       = fs.Int64("seed", 1, "mix seed (same seed, same requests)")
		hotRings   = fs.Int("hot", 4, "hot working-set size")
		hotFrac    = fs.Float64("hot-frac", 0.45, "fraction of requests repeating a hot ring")
		rotFrac    = fs.Float64("rot-frac", 0.30, "fraction resubmitting a hot ring rotated")
		alg        = fs.String("alg", "B", "algorithm (A, B, Astar, CR, Peterson, KnownN)")
		k          = fs.Int("k", 3, "multiplicity bound k")
		engine     = fs.String("engine", "sim", "execution engine: sim or goroutines")
		crosscheck = fs.Float64("crosscheck", 0, "fraction of responses re-verified locally (0 disables)")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "ringload: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *crosscheck < 0 || *crosscheck > 1 {
		fmt.Fprintf(stderr, "ringload: -crosscheck must be in [0, 1]\n")
		return 2
	}

	if *proto != load.ProtoHTTP && *proto != load.ProtoWire {
		fmt.Fprintf(stderr, "ringload: -proto must be http or wire, got %q\n", *proto)
		return 2
	}
	if *proto == load.ProtoWire && *wireAddr == "" {
		fmt.Fprintf(stderr, "ringload: -proto wire requires -wire-addr\n")
		return 2
	}

	rep, err := load.Run(load.Config{
		BaseURL:         *url,
		Proto:           *proto,
		WireAddr:        *wireAddr,
		WireConns:       *wireConns,
		Requests:        *n,
		Workers:         *workers,
		Seed:            *seed,
		HotRings:        *hotRings,
		HotFraction:     *hotFrac,
		RotatedFraction: *rotFrac,
		Alg:             *alg,
		K:               *k,
		Engine:          *engine,
		Crosscheck:      *crosscheck,
		Timeout:         *timeout,
	})
	if err != nil {
		fmt.Fprintf(stderr, "ringload: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "ringload: encoding report: %v\n", err)
		return 1
	}
	if rep.Divergences > 0 {
		fmt.Fprintf(stderr, "ringload: %d of %d crosschecks DIVERGED\n", rep.Divergences, rep.Crosschecks)
		return 1
	}
	if rep.TransportErrors == rep.Requests {
		fmt.Fprintf(stderr, "ringload: no request reached %s\n", *url)
		return 1
	}
	return 0
}
