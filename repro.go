package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Label is a process label; homonym processes may share one. Algorithms
// compare labels but never compute with them.
type Label = ring.Label

// Ring is an immutable labeled unidirectional ring of n ≥ 2 processes.
type Ring = ring.Ring

// Protocol is a distributed algorithm: a factory of identical local
// algorithms differing only in their label.
type Protocol = core.Protocol

// NewRing builds a ring from the clockwise label sequence.
func NewRing(labels []Label) (*Ring, error) { return ring.New(labels) }

// ParseRing reads a whitespace- or comma-separated label list, e.g.
// "1 3 1 3 2 2 1 2".
func ParseRing(spec string) (*Ring, error) { return ring.Parse(spec) }

// MustParseRing is ParseRing, panicking on error. For examples and tests.
func MustParseRing(spec string) *Ring {
	r, err := ring.Parse(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// Figure1Ring returns the paper's Figure 1 ring [1 3 1 3 2 2 1 2].
func Figure1Ring() *Ring { return ring.Figure1() }

// RandomRing draws an asymmetric ring with multiplicity at most k over an
// alphabet of alpha labels, using the given seed.
func RandomRing(seed int64, n, k, alpha int) (*Ring, error) {
	return ring.RandomAsymmetric(rand.New(rand.NewSource(seed)), n, k, alpha)
}

// Algorithm selects one of the implemented election algorithms.
type Algorithm int

const (
	// AlgorithmA is the paper's Ak (Table 1): time-optimal, Θ(knb) space.
	AlgorithmA Algorithm = iota
	// AlgorithmB is the paper's Bk (Table 2): O(log k + b) space, Θ(k²n²)
	// time. Requires k ≥ 2.
	AlgorithmB
	// AlgorithmAStar is the Fine–Wilf early-termination variant at the
	// ≈(k+2)n time point (DESIGN.md §3).
	AlgorithmAStar
	// AlgorithmChangRoberts is the classic baseline for rings with unique
	// labels (ignores k).
	AlgorithmChangRoberts
	// AlgorithmPeterson is the O(n log n)-message baseline for rings with
	// unique labels (ignores k).
	AlgorithmPeterson
	// AlgorithmKnownN is the single-lap baseline for processes that know
	// the exact ring size n instead of a multiplicity bound — the
	// knowledge assumption of the related work the paper contrasts with.
	// Build it with ProtocolFor (it needs the ring's size).
	AlgorithmKnownN
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmA:
		return "Ak"
	case AlgorithmB:
		return "Bk"
	case AlgorithmAStar:
		return "A*"
	case AlgorithmChangRoberts:
		return "ChangRoberts"
	case AlgorithmPeterson:
		return "Peterson"
	case AlgorithmKnownN:
		return "KnownN"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves a user-supplied algorithm name ("A"/"Ak", "B"/
// "Bk", "Astar"/"A*", "CR"/"ChangRoberts", "Peterson", "KnownN"; case-
// insensitive) to an Algorithm. Shared by cmd/ringelect, the election-
// serving daemon (internal/serve), and the load generator (internal/load).
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "a", "ak":
		return AlgorithmA, nil
	case "b", "bk":
		return AlgorithmB, nil
	case "astar", "a*":
		return AlgorithmAStar, nil
	case "cr", "changroberts":
		return AlgorithmChangRoberts, nil
	case "peterson":
		return AlgorithmPeterson, nil
	case "knownn":
		return AlgorithmKnownN, nil
	default:
		return 0, fmt.Errorf("repro: unknown algorithm %q (want A, B, Astar, CR, Peterson, KnownN)", s)
	}
}

// NewProtocol constructs the chosen algorithm for processes whose labels
// fit in labelBits bits. k is the multiplicity bound (ignored by the
// baselines).
func NewProtocol(alg Algorithm, k, labelBits int) (Protocol, error) {
	switch alg {
	case AlgorithmA:
		return core.NewAProtocol(k, labelBits)
	case AlgorithmB:
		return core.NewBProtocol(k, labelBits)
	case AlgorithmAStar:
		return core.NewStarProtocol(k, labelBits)
	case AlgorithmChangRoberts:
		return baseline.NewCRProtocol(labelBits)
	case AlgorithmPeterson:
		return baseline.NewPetersonProtocol(labelBits)
	case AlgorithmKnownN:
		return nil, fmt.Errorf("repro: KnownN needs the ring size; build it with ProtocolFor")
	default:
		return nil, fmt.Errorf("repro: unknown algorithm %d", int(alg))
	}
}

// ProtocolFor builds the chosen algorithm sized for the given ring,
// validating the ring against the algorithm's class: A ∩ Kk for the
// paper's algorithms, K1 for the baselines.
func ProtocolFor(r *Ring, alg Algorithm, k int) (Protocol, error) {
	switch alg {
	case AlgorithmChangRoberts, AlgorithmPeterson:
		if !r.InKk(1) {
			return nil, fmt.Errorf("repro: %s requires unique labels, but %s has multiplicity %d", alg, r, r.MaxMultiplicity())
		}
	case AlgorithmKnownN:
		if !r.IsAsymmetric() {
			return nil, fmt.Errorf("repro: ring %s is symmetric; leader election is unsolvable on it", r)
		}
		return baseline.NewKnownNProtocol(r.N(), r.LabelBits())
	default:
		if !r.InKk(k) {
			return nil, fmt.Errorf("repro: ring %s has multiplicity %d > k = %d (outside Kk)", r, r.MaxMultiplicity(), k)
		}
		if !r.IsAsymmetric() {
			return nil, fmt.Errorf("repro: ring %s is symmetric; leader election is unsolvable on it", r)
		}
	}
	return NewProtocol(alg, k, r.LabelBits())
}

// Outcome summarizes a completed election.
type Outcome struct {
	// Leader is the elected process's index.
	Leader int
	// LeaderLabel is its label, agreed on by every process.
	LeaderLabel Label
	// TimeUnits is the execution time in the paper's unit measure.
	TimeUnits float64
	// Messages is the total number of messages exchanged.
	Messages int
	// PeakSpaceBits is the largest per-process state, in bits.
	PeakSpaceBits int
}

// Elect runs the chosen algorithm on r in the unit-delay asynchronous
// model (the paper's worst-case time measure), verifying the full
// process-terminating leader-election specification along the way.
func Elect(r *Ring, alg Algorithm, k int) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		TimeUnits:     res.TimeUnits,
		Messages:      res.Messages,
		PeakSpaceBits: res.PeakSpaceBits,
	}, nil
}

// ElectParallel runs the chosen algorithm with one goroutine per process
// and channel links, aborting after timeout.
func ElectParallel(r *Ring, alg Algorithm, k int, timeout time.Duration) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := gorun.Run(r, p, timeout)
	if err != nil {
		return nil, err
	}
	peak := 0
	for _, sp := range res.PeakSpacePerProc {
		if sp > peak {
			peak = sp
		}
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		Messages:      res.Messages,
		PeakSpaceBits: peak,
	}, nil
}

// RunTCP runs the chosen algorithm as one OS-level node per process,
// connected in a unidirectional ring by real TCP sockets on loopback
// (internal/netring), aborting after timeout. It mirrors Elect (the
// deterministic simulator) and ElectParallel (the goroutine runtime):
// same protocols, same specification checking — but the model's reliable
// FIFO links are implemented by a wire protocol with sequence numbers,
// reconnection, and backoff rather than assumed. For rings spanning real
// processes or hosts, see cmd/ringnode.
func RunTCP(r *Ring, alg Algorithm, k int, timeout time.Duration) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := netring.RunLocal(r, p, netring.Options{Timeout: timeout})
	if err != nil {
		return nil, err
	}
	peak := 0
	for _, sp := range res.PeakSpacePerProc {
		if sp > peak {
			peak = sp
		}
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		Messages:      res.Messages,
		PeakSpaceBits: peak,
	}, nil
}

// TrueLeader returns the index of the ring's true leader — the process
// whose counter-clockwise label sequence is a Lyndon word — and false when
// the ring is symmetric (no process is distinguishable).
func TrueLeader(r *Ring) (int, bool) { return r.TrueLeader() }
