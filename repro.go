package repro

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/netring"
	randalg "repro/internal/rand"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/words"
)

// Label is a process label; homonym processes may share one. Algorithms
// compare labels but never compute with them.
type Label = ring.Label

// Ring is an immutable labeled unidirectional ring of n ≥ 2 processes.
type Ring = ring.Ring

// Protocol is a distributed algorithm: a factory of identical local
// algorithms differing only in their label.
type Protocol = core.Protocol

// NewRing builds a ring from the clockwise label sequence.
func NewRing(labels []Label) (*Ring, error) { return ring.New(labels) }

// ParseRing reads a whitespace- or comma-separated label list, e.g.
// "1 3 1 3 2 2 1 2".
func ParseRing(spec string) (*Ring, error) { return ring.Parse(spec) }

// MustParseRing is ParseRing, panicking on error. For examples and tests.
func MustParseRing(spec string) *Ring {
	r, err := ring.Parse(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// Figure1Ring returns the paper's Figure 1 ring [1 3 1 3 2 2 1 2].
func Figure1Ring() *Ring { return ring.Figure1() }

// RandomRing draws an asymmetric ring with multiplicity at most k over an
// alphabet of alpha labels, using the given seed.
func RandomRing(seed int64, n, k, alpha int) (*Ring, error) {
	return ring.RandomAsymmetric(rand.New(rand.NewSource(seed)), n, k, alpha)
}

// Algorithm selects one of the implemented election algorithms.
type Algorithm int

const (
	// AlgorithmA is the paper's Ak (Table 1): time-optimal, Θ(knb) space.
	AlgorithmA Algorithm = iota
	// AlgorithmB is the paper's Bk (Table 2): O(log k + b) space, Θ(k²n²)
	// time. Requires k ≥ 2.
	AlgorithmB
	// AlgorithmAStar is the Fine–Wilf early-termination variant at the
	// ≈(k+2)n time point (DESIGN.md §3).
	AlgorithmAStar
	// AlgorithmChangRoberts is the classic baseline for rings with unique
	// labels (ignores k).
	AlgorithmChangRoberts
	// AlgorithmPeterson is the O(n log n)-message baseline for rings with
	// unique labels (ignores k).
	AlgorithmPeterson
	// AlgorithmKnownN is the single-lap baseline for processes that know
	// the exact ring size n instead of a multiplicity bound — the
	// knowledge assumption of the related work the paper contrasts with.
	// Build it with ProtocolFor (it needs the ring's size).
	AlgorithmKnownN
	// AlgorithmItaiRodeh is the randomized Itai–Rodeh election
	// (internal/rand): processes know n, draw random identities, and elect
	// with probability 1 — on ANY ring, symmetric ones included, where
	// every deterministic algorithm is provably stuck. The run is
	// deterministic per seed (ProtocolFor derives the seed from the ring
	// via RingSeed, so every engine replays identically). Build it with
	// ProtocolFor (it needs the ring's size and seed).
	AlgorithmItaiRodeh
)

// algorithmSpec is one registry row: the canonical display name, the
// aliases ParseAlgorithm accepts (lower-case), the ring-class precondition,
// and the two constructors. Algorithms are wired here once; ParseAlgorithm,
// String, NewProtocol, and ProtocolFor are all table lookups, so adding an
// algorithm never touches the call sites (cmd/ringelect, cmd/ringfuzz,
// internal/serve, internal/cluster, internal/load reach it immediately).
type algorithmSpec struct {
	name    string
	aliases []string
	// class is the algorithm's ring-class precondition; classAny means no
	// precondition (the randomized engine runs on any ring).
	class ringClass
	// build constructs the protocol sized for r (k is the multiplicity
	// bound; algorithms that do not use it ignore it).
	build func(r *Ring, k int) (Protocol, error)
	// buildFree constructs the protocol from k and labelBits alone, for
	// NewProtocol; nil when construction needs the ring itself.
	buildFree func(k, labelBits int) (Protocol, error)
}

// ringClass enumerates the algorithms' ring-class preconditions. An enum
// (rather than per-entry check closures) lets the election kernel validate
// rings allocation-free: one shared checker with caller-owned scratch
// instead of a map-allocating Multiplicities call per election.
type ringClass int

const (
	// classAny accepts every ring (Itai–Rodeh elects on any ring with
	// probability 1).
	classAny ringClass = iota
	// classKkAsym is the paper algorithms' class: A ∩ Kk.
	classKkAsym
	// classUnique is the unique-label baselines' class: K1.
	classUnique
	// classAsym is KnownN's class: any asymmetric ring.
	classAsym
)

// maxMultiplicityInto computes the ring's maximum label multiplicity by
// sorting a scratch copy of the labels and scanning runs — equal to
// r.MaxMultiplicity() without its per-call map. The (possibly grown)
// scratch is returned for reuse.
func maxMultiplicityInto(r *Ring, scratch []Label) ([]Label, int) {
	labels := r.LabelsView()
	n := len(labels)
	if n == 0 {
		return scratch, 0
	}
	if cap(scratch) < n {
		scratch = make([]Label, n)
	}
	scratch = scratch[:n]
	copy(scratch, labels)
	slices.Sort(scratch)
	best, run := 1, 1
	for i := 1; i < n; i++ {
		if scratch[i] == scratch[i-1] {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	return scratch, best
}

// check validates r against the class, using (and returning) scratch for
// the multiplicity count. name is the algorithm's display name for the
// unique-label error. The error texts are those of the pre-enum per-entry
// checkers, verbatim.
func (c ringClass) check(name string, r *Ring, k int, scratch []Label) ([]Label, error) {
	switch c {
	case classKkAsym:
		var m int
		scratch, m = maxMultiplicityInto(r, scratch)
		if m > k {
			return scratch, fmt.Errorf("repro: ring %s has multiplicity %d > k = %d (outside Kk)", r, m, k)
		}
		if !r.IsAsymmetric() {
			return scratch, fmt.Errorf("repro: ring %s is symmetric; leader election is unsolvable on it", r)
		}
	case classUnique:
		var m int
		scratch, m = maxMultiplicityInto(r, scratch)
		if m > 1 {
			return scratch, fmt.Errorf("repro: %s requires unique labels, but %s has multiplicity %d", name, r, m)
		}
	case classAsym:
		if !r.IsAsymmetric() {
			return scratch, fmt.Errorf("repro: ring %s is symmetric; leader election is unsolvable on it", r)
		}
	}
	return scratch, nil
}

// registry is indexed by Algorithm; the order fixes the enumeration in
// AlgorithmNames and in ParseAlgorithm's error message.
var registry = [...]algorithmSpec{
	AlgorithmA: {
		name: "Ak", aliases: []string{"a", "ak"},
		class:     classKkAsym,
		build:     func(r *Ring, k int) (Protocol, error) { return core.NewAProtocol(k, r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return core.NewAProtocol(k, labelBits) },
	},
	AlgorithmB: {
		name: "Bk", aliases: []string{"b", "bk"},
		class:     classKkAsym,
		build:     func(r *Ring, k int) (Protocol, error) { return core.NewBProtocol(k, r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return core.NewBProtocol(k, labelBits) },
	},
	AlgorithmAStar: {
		name: "A*", aliases: []string{"astar", "a*"},
		class:     classKkAsym,
		build:     func(r *Ring, k int) (Protocol, error) { return core.NewStarProtocol(k, r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return core.NewStarProtocol(k, labelBits) },
	},
	AlgorithmChangRoberts: {
		name: "ChangRoberts", aliases: []string{"cr", "changroberts"},
		class:     classUnique,
		build:     func(r *Ring, k int) (Protocol, error) { return baseline.NewCRProtocol(r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return baseline.NewCRProtocol(labelBits) },
	},
	AlgorithmPeterson: {
		name: "Peterson", aliases: []string{"peterson"},
		class:     classUnique,
		build:     func(r *Ring, k int) (Protocol, error) { return baseline.NewPetersonProtocol(r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return baseline.NewPetersonProtocol(labelBits) },
	},
	AlgorithmKnownN: {
		name: "KnownN", aliases: []string{"knownn"},
		class: classAsym,
		build: func(r *Ring, k int) (Protocol, error) { return baseline.NewKnownNProtocol(r.N(), r.LabelBits()) },
	},
	AlgorithmItaiRodeh: {
		name: "ItaiRodeh", aliases: []string{"ir", "itairodeh", "rand", "randomized"},
		build: func(r *Ring, k int) (Protocol, error) {
			rot := words.LeastRotationIndex(r.LabelsView())
			return randalg.New(r.N(), randalg.Alphabet, r.LabelBits(), rot, RingSeed(r))
		},
	},
}

// String names the algorithm.
func (a Algorithm) String() string {
	if ValidAlgorithm(a) {
		return registry[a].name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ValidAlgorithm reports whether a is a registered algorithm — the single
// validity check used by the wire decoders (internal/serve, cmd/ringgw) so
// new algorithms become servable by registration alone.
func ValidAlgorithm(a Algorithm) bool {
	return a >= 0 && int(a) < len(registry)
}

// Algorithms returns every registered algorithm in registry order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(registry))
	for i := range registry {
		out[i] = Algorithm(i)
	}
	return out
}

// AlgorithmNames returns the canonical display names in registry order.
func AlgorithmNames() []string {
	out := make([]string, len(registry))
	for i := range registry {
		out[i] = registry[i].name
	}
	return out
}

// ParseAlgorithm resolves a user-supplied algorithm name to an Algorithm.
// Matching is case-insensitive over each registry entry's canonical name
// and aliases (e.g. "A"/"Ak", "Astar"/"A*", "CR"/"ChangRoberts", "IR"/
// "rand"/"ItaiRodeh"). Shared by cmd/ringelect, the election-serving
// daemon (internal/serve), and the load generator (internal/load). The
// error enumerates every registered name, so a typo's message is always
// current.
func ParseAlgorithm(s string) (Algorithm, error) {
	want := strings.ToLower(s)
	for i := range registry {
		if strings.ToLower(registry[i].name) == want {
			return Algorithm(i), nil
		}
		for _, alias := range registry[i].aliases {
			if alias == want {
				return Algorithm(i), nil
			}
		}
	}
	return 0, fmt.Errorf("repro: unknown algorithm %q (want %s)", s, strings.Join(AlgorithmNames(), ", "))
}

// FNV-1a parameters (FNV-0 offset basis and 64-bit prime), inlined so the
// seed derivation is allocation-free on the serving miss path; hash/fnv
// would heap-allocate its digest per call.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvUint64 folds v into the running FNV-1a hash h byte by byte, in
// big-endian order — bit-identical to writing binary.BigEndian.PutUint64(v)
// into hash/fnv's New64a.
func fnvUint64(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= (v >> uint(shift)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// RingSeed derives the randomized engine's PRNG seed from the ring itself:
// FNV-1a over n and the ring's least-rotation label sequence. Keying on
// the CANONICAL rotation (not the given one) makes the seed — and with it
// the whole execution — rotation-invariant, which is what lets the serving
// layer cache one canonical execution per ring class and replay it for
// every rotation (internal/serve).
func RingSeed(r *Ring) uint64 {
	labels := r.LabelsView()
	return ringSeedAt(labels, words.LeastRotationIndex(labels))
}

// ringSeedAt is RingSeed with the least-rotation index already known, so
// the kernel computes Booth's algorithm once per election rather than once
// for the seed and once for the PRNG stream offsets.
func ringSeedAt(labels []Label, rot int) uint64 {
	n := len(labels)
	h := fnvUint64(fnvOffset64, uint64(n))
	for i := 0; i < n; i++ {
		h = fnvUint64(h, uint64(int64(labels[(rot+i)%n])))
	}
	return h
}

// NewProtocol constructs the chosen algorithm for processes whose labels
// fit in labelBits bits. k is the multiplicity bound (ignored by the
// baselines). Algorithms whose construction needs the ring itself (KnownN,
// ItaiRodeh) must be built with ProtocolFor.
func NewProtocol(alg Algorithm, k, labelBits int) (Protocol, error) {
	if !ValidAlgorithm(alg) {
		return nil, fmt.Errorf("repro: unknown algorithm %d", int(alg))
	}
	spec := &registry[alg]
	if spec.buildFree == nil {
		return nil, fmt.Errorf("repro: %s needs the ring; build it with ProtocolFor", spec.name)
	}
	return spec.buildFree(k, labelBits)
}

// ProtocolFor builds the chosen algorithm sized for the given ring,
// validating the ring against the algorithm's class: A ∩ Kk for the
// paper's algorithms, K1 for the unique-label baselines, A for KnownN —
// and NO precondition for ItaiRodeh, which elects on any ring (symmetric
// ones included) with probability 1.
func ProtocolFor(r *Ring, alg Algorithm, k int) (Protocol, error) {
	if !ValidAlgorithm(alg) {
		return nil, fmt.Errorf("repro: unknown algorithm %d", int(alg))
	}
	spec := &registry[alg]
	if _, err := spec.class.check(spec.name, r, k, nil); err != nil {
		return nil, err
	}
	return spec.build(r, k)
}

// Outcome summarizes a completed election.
type Outcome struct {
	// Leader is the elected process's index.
	Leader int
	// LeaderLabel is its label, agreed on by every process.
	LeaderLabel Label
	// TimeUnits is the execution time in the paper's unit measure.
	TimeUnits float64
	// Messages is the total number of messages exchanged.
	Messages int
	// TotalBits is the total payload cost of those messages in bits
	// (core.Message.Bits summed over every send).
	TotalBits int
	// PeakSpaceBits is the largest per-process state, in bits.
	PeakSpaceBits int
}

// Elect runs the chosen algorithm on r in the unit-delay asynchronous
// model (the paper's worst-case time measure), verifying the full
// process-terminating leader-election specification along the way.
func Elect(r *Ring, alg Algorithm, k int) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		TimeUnits:     res.TimeUnits,
		Messages:      res.Messages,
		TotalBits:     res.TotalBits,
		PeakSpaceBits: res.PeakSpaceBits,
	}, nil
}

// ElectParallel runs the chosen algorithm with one goroutine per process
// and channel links, aborting after timeout.
func ElectParallel(r *Ring, alg Algorithm, k int, timeout time.Duration) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := gorun.Run(r, p, timeout)
	if err != nil {
		return nil, err
	}
	peak := 0
	for _, sp := range res.PeakSpacePerProc {
		if sp > peak {
			peak = sp
		}
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		Messages:      res.Messages,
		TotalBits:     res.TotalBits,
		PeakSpaceBits: peak,
	}, nil
}

// RunTCP runs the chosen algorithm as one OS-level node per process,
// connected in a unidirectional ring by real TCP sockets on loopback
// (internal/netring), aborting after timeout. It mirrors Elect (the
// deterministic simulator) and ElectParallel (the goroutine runtime):
// same protocols, same specification checking — but the model's reliable
// FIFO links are implemented by a wire protocol with sequence numbers,
// reconnection, and backoff rather than assumed. For rings spanning real
// processes or hosts, see cmd/ringnode.
func RunTCP(r *Ring, alg Algorithm, k int, timeout time.Duration) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := netring.RunLocal(r, p, netring.Options{Timeout: timeout})
	if err != nil {
		return nil, err
	}
	peak := 0
	for _, sp := range res.PeakSpacePerProc {
		if sp > peak {
			peak = sp
		}
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		Messages:      res.Messages,
		TotalBits:     res.TotalBits,
		PeakSpaceBits: peak,
	}, nil
}

// TrueLeader returns the index of the ring's true leader — the process
// whose counter-clockwise label sequence is a Lyndon word — and false when
// the ring is symmetric (no process is distinguishable).
func TrueLeader(r *Ring) (int, bool) { return r.TrueLeader() }

// protoKey identifies the protocol instance an ElectScratch has cached:
// the registry build functions are pure in these parameters, so two
// elections whose keys match can share one protocol value (and, for the
// randomized engine, one Name() string and one stream-seed layout).
type protoKey struct {
	alg       Algorithm
	k, n      int
	labelBits int
	rot       int
	seed      uint64
	valid     bool
}

// ElectScratch is the caller-owned arena for ElectInto: the simulator
// scratch (machine pools, event heap, result), the Booth and multiplicity
// scratch used by the ring-class checks and seed derivation, and a cached
// protocol. A warmed scratch serves whole elections without heap
// allocation — the serving layer keeps one per admission worker.
//
// An ElectScratch is single-threaded; concurrent elections need one each.
// The zero value is ready to use.
type ElectScratch struct {
	sim    sim.Scratch
	booth  []int
	sorted []Label
	proto  Protocol
	key    protoKey
}

// NewElectScratch returns an empty arena, equivalent to new(ElectScratch).
func NewElectScratch() *ElectScratch { return &ElectScratch{} }

// protocolInto resolves the protocol for (r, alg, k) through the registry,
// validating the ring class with sc's scratch and reusing sc's cached
// protocol when the build parameters are unchanged — the common case for an
// admission worker draining a batch of same-algorithm requests.
func protocolInto(r *Ring, alg Algorithm, k int, sc *ElectScratch) (Protocol, error) {
	if !ValidAlgorithm(alg) {
		return nil, fmt.Errorf("repro: unknown algorithm %d", int(alg))
	}
	spec := &registry[alg]
	var err error
	sc.sorted, err = spec.class.check(spec.name, r, k, sc.sorted)
	if err != nil {
		return nil, err
	}
	key := protoKey{alg: alg, labelBits: r.LabelBits(), valid: true}
	switch alg {
	case AlgorithmA, AlgorithmB, AlgorithmAStar:
		key.k = k
	case AlgorithmChangRoberts, AlgorithmPeterson:
		// labelBits alone determines the protocol.
	case AlgorithmKnownN:
		key.n = r.N()
	case AlgorithmItaiRodeh:
		labels := r.LabelsView()
		key.n = r.N()
		sc.booth = words.LyndonScratch(sc.booth, len(labels))
		key.rot = words.LeastRotationIndexInto(labels, sc.booth)
		key.seed = ringSeedAt(labels, key.rot)
	default:
		// A registered algorithm this switch does not know: build fresh
		// (correct, just uncached).
		return spec.build(r, k)
	}
	if sc.proto != nil && key == sc.key {
		return sc.proto, nil
	}
	var p Protocol
	if alg == AlgorithmItaiRodeh {
		// Same protocol the registry build constructs, but from the rot and
		// seed already computed for the cache key.
		p, err = randalg.New(key.n, randalg.Alphabet, key.labelBits, key.rot, key.seed)
	} else {
		p, err = spec.build(r, k)
	}
	if err != nil {
		return nil, err
	}
	sc.proto, sc.key = p, key
	return p, nil
}

// ElectInto is Elect executing entirely inside sc: same algorithm
// resolution through the registry, same ring-class validation (identical
// error text), same unit-delay asynchronous execution with full
// specification checking, and a byte-identical Outcome — written into out
// instead of allocated. A warmed scratch runs allocation-free, which is
// what the serving miss path's per-worker arenas rely on
// (internal/serve; DESIGN.md §11).
func ElectInto(r *Ring, alg Algorithm, k int, sc *ElectScratch, out *Outcome) error {
	p, err := protocolInto(r, alg, k, sc)
	if err != nil {
		return err
	}
	res, err := sim.RunAsyncInto(r, p, sim.ConstantDelay(1), sim.Options{}, &sc.sim)
	if err != nil {
		return err
	}
	*out = Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		TimeUnits:     res.TimeUnits,
		Messages:      res.Messages,
		TotalBits:     res.TotalBits,
		PeakSpaceBits: res.PeakSpaceBits,
	}
	return nil
}
