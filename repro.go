package repro

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/netring"
	randalg "repro/internal/rand"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/words"
)

// Label is a process label; homonym processes may share one. Algorithms
// compare labels but never compute with them.
type Label = ring.Label

// Ring is an immutable labeled unidirectional ring of n ≥ 2 processes.
type Ring = ring.Ring

// Protocol is a distributed algorithm: a factory of identical local
// algorithms differing only in their label.
type Protocol = core.Protocol

// NewRing builds a ring from the clockwise label sequence.
func NewRing(labels []Label) (*Ring, error) { return ring.New(labels) }

// ParseRing reads a whitespace- or comma-separated label list, e.g.
// "1 3 1 3 2 2 1 2".
func ParseRing(spec string) (*Ring, error) { return ring.Parse(spec) }

// MustParseRing is ParseRing, panicking on error. For examples and tests.
func MustParseRing(spec string) *Ring {
	r, err := ring.Parse(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// Figure1Ring returns the paper's Figure 1 ring [1 3 1 3 2 2 1 2].
func Figure1Ring() *Ring { return ring.Figure1() }

// RandomRing draws an asymmetric ring with multiplicity at most k over an
// alphabet of alpha labels, using the given seed.
func RandomRing(seed int64, n, k, alpha int) (*Ring, error) {
	return ring.RandomAsymmetric(rand.New(rand.NewSource(seed)), n, k, alpha)
}

// Algorithm selects one of the implemented election algorithms.
type Algorithm int

const (
	// AlgorithmA is the paper's Ak (Table 1): time-optimal, Θ(knb) space.
	AlgorithmA Algorithm = iota
	// AlgorithmB is the paper's Bk (Table 2): O(log k + b) space, Θ(k²n²)
	// time. Requires k ≥ 2.
	AlgorithmB
	// AlgorithmAStar is the Fine–Wilf early-termination variant at the
	// ≈(k+2)n time point (DESIGN.md §3).
	AlgorithmAStar
	// AlgorithmChangRoberts is the classic baseline for rings with unique
	// labels (ignores k).
	AlgorithmChangRoberts
	// AlgorithmPeterson is the O(n log n)-message baseline for rings with
	// unique labels (ignores k).
	AlgorithmPeterson
	// AlgorithmKnownN is the single-lap baseline for processes that know
	// the exact ring size n instead of a multiplicity bound — the
	// knowledge assumption of the related work the paper contrasts with.
	// Build it with ProtocolFor (it needs the ring's size).
	AlgorithmKnownN
	// AlgorithmItaiRodeh is the randomized Itai–Rodeh election
	// (internal/rand): processes know n, draw random identities, and elect
	// with probability 1 — on ANY ring, symmetric ones included, where
	// every deterministic algorithm is provably stuck. The run is
	// deterministic per seed (ProtocolFor derives the seed from the ring
	// via RingSeed, so every engine replays identically). Build it with
	// ProtocolFor (it needs the ring's size and seed).
	AlgorithmItaiRodeh
)

// algorithmSpec is one registry row: the canonical display name, the
// aliases ParseAlgorithm accepts (lower-case), the ring-class precondition,
// and the two constructors. Algorithms are wired here once; ParseAlgorithm,
// String, NewProtocol, and ProtocolFor are all table lookups, so adding an
// algorithm never touches the call sites (cmd/ringelect, cmd/ringfuzz,
// internal/serve, internal/cluster, internal/load reach it immediately).
type algorithmSpec struct {
	name    string
	aliases []string
	// check validates the ring against the algorithm's class; nil means no
	// precondition (the randomized engine runs on any ring).
	check func(r *Ring, k int) error
	// build constructs the protocol sized for r (k is the multiplicity
	// bound; algorithms that do not use it ignore it).
	build func(r *Ring, k int) (Protocol, error)
	// buildFree constructs the protocol from k and labelBits alone, for
	// NewProtocol; nil when construction needs the ring itself.
	buildFree func(k, labelBits int) (Protocol, error)
}

// checkKkAsym is the paper algorithms' class: A ∩ Kk.
func checkKkAsym(r *Ring, k int) error {
	if !r.InKk(k) {
		return fmt.Errorf("repro: ring %s has multiplicity %d > k = %d (outside Kk)", r, r.MaxMultiplicity(), k)
	}
	if !r.IsAsymmetric() {
		return fmt.Errorf("repro: ring %s is symmetric; leader election is unsolvable on it", r)
	}
	return nil
}

// checkUnique is the unique-label baselines' class: K1.
func checkUnique(name string) func(r *Ring, k int) error {
	return func(r *Ring, k int) error {
		if !r.InKk(1) {
			return fmt.Errorf("repro: %s requires unique labels, but %s has multiplicity %d", name, r, r.MaxMultiplicity())
		}
		return nil
	}
}

// checkAsym is KnownN's class: any asymmetric ring.
func checkAsym(r *Ring, k int) error {
	if !r.IsAsymmetric() {
		return fmt.Errorf("repro: ring %s is symmetric; leader election is unsolvable on it", r)
	}
	return nil
}

// registry is indexed by Algorithm; the order fixes the enumeration in
// AlgorithmNames and in ParseAlgorithm's error message.
var registry = [...]algorithmSpec{
	AlgorithmA: {
		name: "Ak", aliases: []string{"a", "ak"},
		check:     checkKkAsym,
		build:     func(r *Ring, k int) (Protocol, error) { return core.NewAProtocol(k, r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return core.NewAProtocol(k, labelBits) },
	},
	AlgorithmB: {
		name: "Bk", aliases: []string{"b", "bk"},
		check:     checkKkAsym,
		build:     func(r *Ring, k int) (Protocol, error) { return core.NewBProtocol(k, r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return core.NewBProtocol(k, labelBits) },
	},
	AlgorithmAStar: {
		name: "A*", aliases: []string{"astar", "a*"},
		check:     checkKkAsym,
		build:     func(r *Ring, k int) (Protocol, error) { return core.NewStarProtocol(k, r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return core.NewStarProtocol(k, labelBits) },
	},
	AlgorithmChangRoberts: {
		name: "ChangRoberts", aliases: []string{"cr", "changroberts"},
		check:     checkUnique("ChangRoberts"),
		build:     func(r *Ring, k int) (Protocol, error) { return baseline.NewCRProtocol(r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return baseline.NewCRProtocol(labelBits) },
	},
	AlgorithmPeterson: {
		name: "Peterson", aliases: []string{"peterson"},
		check:     checkUnique("Peterson"),
		build:     func(r *Ring, k int) (Protocol, error) { return baseline.NewPetersonProtocol(r.LabelBits()) },
		buildFree: func(k, labelBits int) (Protocol, error) { return baseline.NewPetersonProtocol(labelBits) },
	},
	AlgorithmKnownN: {
		name: "KnownN", aliases: []string{"knownn"},
		check: checkAsym,
		build: func(r *Ring, k int) (Protocol, error) { return baseline.NewKnownNProtocol(r.N(), r.LabelBits()) },
	},
	AlgorithmItaiRodeh: {
		name: "ItaiRodeh", aliases: []string{"ir", "itairodeh", "rand", "randomized"},
		build: func(r *Ring, k int) (Protocol, error) {
			rot := words.LeastRotationIndex(r.LabelsView())
			return randalg.New(r.N(), randalg.Alphabet, r.LabelBits(), rot, RingSeed(r))
		},
	},
}

// String names the algorithm.
func (a Algorithm) String() string {
	if ValidAlgorithm(a) {
		return registry[a].name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ValidAlgorithm reports whether a is a registered algorithm — the single
// validity check used by the wire decoders (internal/serve, cmd/ringgw) so
// new algorithms become servable by registration alone.
func ValidAlgorithm(a Algorithm) bool {
	return a >= 0 && int(a) < len(registry)
}

// Algorithms returns every registered algorithm in registry order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(registry))
	for i := range registry {
		out[i] = Algorithm(i)
	}
	return out
}

// AlgorithmNames returns the canonical display names in registry order.
func AlgorithmNames() []string {
	out := make([]string, len(registry))
	for i := range registry {
		out[i] = registry[i].name
	}
	return out
}

// ParseAlgorithm resolves a user-supplied algorithm name to an Algorithm.
// Matching is case-insensitive over each registry entry's canonical name
// and aliases (e.g. "A"/"Ak", "Astar"/"A*", "CR"/"ChangRoberts", "IR"/
// "rand"/"ItaiRodeh"). Shared by cmd/ringelect, the election-serving
// daemon (internal/serve), and the load generator (internal/load). The
// error enumerates every registered name, so a typo's message is always
// current.
func ParseAlgorithm(s string) (Algorithm, error) {
	want := strings.ToLower(s)
	for i := range registry {
		if strings.ToLower(registry[i].name) == want {
			return Algorithm(i), nil
		}
		for _, alias := range registry[i].aliases {
			if alias == want {
				return Algorithm(i), nil
			}
		}
	}
	return 0, fmt.Errorf("repro: unknown algorithm %q (want %s)", s, strings.Join(AlgorithmNames(), ", "))
}

// RingSeed derives the randomized engine's PRNG seed from the ring itself:
// FNV-1a over n and the ring's least-rotation label sequence. Keying on
// the CANONICAL rotation (not the given one) makes the seed — and with it
// the whole execution — rotation-invariant, which is what lets the serving
// layer cache one canonical execution per ring class and replay it for
// every rotation (internal/serve).
func RingSeed(r *Ring) uint64 {
	labels := r.LabelsView()
	n := len(labels)
	rot := words.LeastRotationIndex(labels)
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(n))
	h.Write(b[:])
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(b[:], uint64(int64(labels[(rot+i)%n])))
		h.Write(b[:])
	}
	return h.Sum64()
}

// NewProtocol constructs the chosen algorithm for processes whose labels
// fit in labelBits bits. k is the multiplicity bound (ignored by the
// baselines). Algorithms whose construction needs the ring itself (KnownN,
// ItaiRodeh) must be built with ProtocolFor.
func NewProtocol(alg Algorithm, k, labelBits int) (Protocol, error) {
	if !ValidAlgorithm(alg) {
		return nil, fmt.Errorf("repro: unknown algorithm %d", int(alg))
	}
	spec := &registry[alg]
	if spec.buildFree == nil {
		return nil, fmt.Errorf("repro: %s needs the ring; build it with ProtocolFor", spec.name)
	}
	return spec.buildFree(k, labelBits)
}

// ProtocolFor builds the chosen algorithm sized for the given ring,
// validating the ring against the algorithm's class: A ∩ Kk for the
// paper's algorithms, K1 for the unique-label baselines, A for KnownN —
// and NO precondition for ItaiRodeh, which elects on any ring (symmetric
// ones included) with probability 1.
func ProtocolFor(r *Ring, alg Algorithm, k int) (Protocol, error) {
	if !ValidAlgorithm(alg) {
		return nil, fmt.Errorf("repro: unknown algorithm %d", int(alg))
	}
	spec := &registry[alg]
	if spec.check != nil {
		if err := spec.check(r, k); err != nil {
			return nil, err
		}
	}
	return spec.build(r, k)
}

// Outcome summarizes a completed election.
type Outcome struct {
	// Leader is the elected process's index.
	Leader int
	// LeaderLabel is its label, agreed on by every process.
	LeaderLabel Label
	// TimeUnits is the execution time in the paper's unit measure.
	TimeUnits float64
	// Messages is the total number of messages exchanged.
	Messages int
	// TotalBits is the total payload cost of those messages in bits
	// (core.Message.Bits summed over every send).
	TotalBits int
	// PeakSpaceBits is the largest per-process state, in bits.
	PeakSpaceBits int
}

// Elect runs the chosen algorithm on r in the unit-delay asynchronous
// model (the paper's worst-case time measure), verifying the full
// process-terminating leader-election specification along the way.
func Elect(r *Ring, alg Algorithm, k int) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		TimeUnits:     res.TimeUnits,
		Messages:      res.Messages,
		TotalBits:     res.TotalBits,
		PeakSpaceBits: res.PeakSpaceBits,
	}, nil
}

// ElectParallel runs the chosen algorithm with one goroutine per process
// and channel links, aborting after timeout.
func ElectParallel(r *Ring, alg Algorithm, k int, timeout time.Duration) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := gorun.Run(r, p, timeout)
	if err != nil {
		return nil, err
	}
	peak := 0
	for _, sp := range res.PeakSpacePerProc {
		if sp > peak {
			peak = sp
		}
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		Messages:      res.Messages,
		TotalBits:     res.TotalBits,
		PeakSpaceBits: peak,
	}, nil
}

// RunTCP runs the chosen algorithm as one OS-level node per process,
// connected in a unidirectional ring by real TCP sockets on loopback
// (internal/netring), aborting after timeout. It mirrors Elect (the
// deterministic simulator) and ElectParallel (the goroutine runtime):
// same protocols, same specification checking — but the model's reliable
// FIFO links are implemented by a wire protocol with sequence numbers,
// reconnection, and backoff rather than assumed. For rings spanning real
// processes or hosts, see cmd/ringnode.
func RunTCP(r *Ring, alg Algorithm, k int, timeout time.Duration) (*Outcome, error) {
	p, err := ProtocolFor(r, alg, k)
	if err != nil {
		return nil, err
	}
	res, err := netring.RunLocal(r, p, netring.Options{Timeout: timeout})
	if err != nil {
		return nil, err
	}
	peak := 0
	for _, sp := range res.PeakSpacePerProc {
		if sp > peak {
			peak = sp
		}
	}
	return &Outcome{
		Leader:        res.LeaderIndex,
		LeaderLabel:   r.Label(res.LeaderIndex),
		Messages:      res.Messages,
		TotalBits:     res.TotalBits,
		PeakSpaceBits: peak,
	}, nil
}

// TrueLeader returns the index of the ring's true leader — the process
// whose counter-clockwise label sequence is a Lyndon word — and false when
// the ring is symmetric (no process is distinguishable).
func TrueLeader(r *Ring) (int, bool) { return r.TrueLeader() }
